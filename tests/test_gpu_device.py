"""Unit tests for the GPU device model."""

import pytest

from repro.gpu import (
    ENGINE_3D,
    ENGINE_COMPUTE,
    ENGINE_VIDEO_ENCODE,
    GpuDevice,
    HASHES_PER_BATCH,
    MiningStats,
)
from repro.hardware import GTX_1080_TI, GTX_285, GTX_680
from repro.sim import MS, SECOND, Environment
from repro.trace import GpuUtilizationTable, TraceSession


class FakeProcess:
    name = "app.exe"
    pid = 8


@pytest.fixture
def env():
    return Environment()


def make_device(env, spec=GTX_1080_TI):
    session = TraceSession(env)
    session.start()
    return GpuDevice(env, spec, session), session


class TestPacketExecution:
    def test_packet_runs_for_nominal_time_on_reference(self, env):
        device, session = make_device(env)
        done = device.submit(FakeProcess(), ENGINE_3D, "frame", 10 * MS)
        env.run()
        trace = session.stop()
        assert done.triggered
        assert len(trace.gpu_packets) == 1
        assert trace.gpu_packets[0].running_time == 10 * MS

    def test_packets_on_one_engine_serialize(self, env):
        device, session = make_device(env)
        process = FakeProcess()
        device.submit(process, ENGINE_3D, "frame", 10 * MS)
        device.submit(process, ENGINE_3D, "frame", 10 * MS)
        env.run()
        trace = session.stop()
        first, second = sorted(trace.gpu_packets,
                               key=lambda p: p.start_execution)
        assert second.start_execution >= first.finished
        assert second.queue_time >= 10 * MS

    def test_packets_on_different_engines_overlap(self, env):
        device, session = make_device(env)
        process = FakeProcess()
        device.submit(process, ENGINE_3D, "frame", 10 * MS)
        device.submit(process, ENGINE_COMPUTE, "kernel", 10 * MS)
        env.run()
        trace = session.stop()
        a, b = trace.gpu_packets
        assert a.start_execution == b.start_execution

    def test_unknown_engine_rejected(self, env):
        device, _ = make_device(env)
        with pytest.raises(ValueError):
            device.submit(FakeProcess(), "tensor", "x", MS)

    def test_nonpositive_work_rejected(self, env):
        device, _ = make_device(env)
        with pytest.raises(ValueError):
            device.submit(FakeProcess(), ENGINE_3D, "frame", 0)

    def test_completion_event_carries_payload(self, env):
        device, _ = make_device(env)
        done = device.submit(FakeProcess(), ENGINE_3D, "frame", MS,
                             payload="frame-7")
        env.run()
        assert done.value == "frame-7"


class TestDeviceScaling:
    def test_weaker_gpu_takes_proportionally_longer(self, env):
        device, session = make_device(env, GTX_680)
        device.submit(FakeProcess(), ENGINE_3D, "frame", 10 * MS)
        env.run()
        trace = session.stop()
        expected = 10 * MS * GTX_1080_TI.throughput_relative_to(GTX_680)
        assert trace.gpu_packets[0].running_time == pytest.approx(
            expected, rel=0.01)

    def test_fixed_function_nvenc_scales_by_video_generation(self, env):
        # NVENC/NVDEC speed follows the video-engine generation, not
        # the CUDA-core count: the Kepler 680 is ~2.2x slower than
        # Pascal, far less than its ~3.4x compute gap.
        results = {}
        for spec in (GTX_1080_TI, GTX_680):
            local_env = Environment()
            device, session = make_device(local_env, spec)
            device.submit(FakeProcess(), ENGINE_VIDEO_ENCODE, "nvenc", 5 * MS)
            local_env.run()
            trace = session.stop()
            results[spec.name] = trace.gpu_packets[0].running_time
        ratio = results[GTX_680.name] / results[GTX_1080_TI.name]
        assert ratio == pytest.approx(GTX_680.video_engine_slowdown,
                                      rel=0.01)
        assert ratio < GTX_1080_TI.throughput_relative_to(GTX_680)

    def test_mining_gap_on_unoptimized_architecture(self, env):
        gap, service = GpuDevice(
            env, GTX_680, TraceSession(env)).service_profile("ethash", 10 * MS)
        assert gap > 0
        optimized_gap, optimized_service = GpuDevice(
            env, GTX_1080_TI, TraceSession(env)).service_profile(
                "ethash", 10 * MS)
        assert optimized_gap == 0
        assert service > optimized_service

    def test_gtx285_is_much_slower_than_1080ti(self, env):
        _gap, service_285 = GpuDevice(
            env, GTX_285, TraceSession(env)).service_profile("frame", 10 * MS)
        assert service_285 > 30 * 10 * MS / 35  # >~30x slower


class TestDeviceAccounting:
    def test_busy_us_matches_trace(self, env):
        device, session = make_device(env)
        process = FakeProcess()
        for _ in range(3):
            device.submit(process, ENGINE_3D, "frame", 4 * MS)
        env.run()
        trace = session.stop()
        table_busy = sum(p.running_time for p in trace.gpu_packets)
        assert device.busy_us() == table_busy == 12 * MS

    def test_utilization_pct(self, env):
        device, _ = make_device(env)
        device.submit(FakeProcess(), ENGINE_3D, "frame", 25 * MS)
        env.run()
        assert device.utilization_pct(100 * MS) == pytest.approx(25.0)

    def test_utilization_window_validation(self, env):
        device, _ = make_device(env)
        with pytest.raises(ValueError):
            device.utilization_pct(0)

    def test_per_engine_busy(self, env):
        device, _ = make_device(env)
        device.submit(FakeProcess(), ENGINE_3D, "frame", 2 * MS)
        device.submit(FakeProcess(), ENGINE_COMPUTE, "kernel", 3 * MS)
        env.run()
        assert device.busy_us(ENGINE_3D) == 2 * MS
        assert device.busy_us(ENGINE_COMPUTE) == 3 * MS


class TestMiningStats:
    def test_hash_rate_from_batches(self):
        stats = MiningStats("ethash")
        stats.add_batch(10)
        rate = stats.hash_rate(SECOND)
        assert rate == pytest.approx(10 * HASHES_PER_BATCH["ethash"])

    def test_cpu_hashes_add_to_rate(self):
        stats = MiningStats("sha256d")
        stats.add_batch(1)
        stats.add_cpu_hashes(1000)
        assert stats.hash_rate(SECOND) == pytest.approx(
            HASHES_PER_BATCH["sha256d"] + 1000)

    def test_elapsed_validation(self):
        with pytest.raises(ValueError):
            MiningStats("ethash").hash_rate(0)


class TestTraceIntegration:
    def test_gpu_table_from_device_trace(self, env):
        device, session = make_device(env)
        process = FakeProcess()
        device.submit(process, ENGINE_3D, "frame", 5 * MS)
        env.run()
        trace = session.stop()
        table = GpuUtilizationTable.from_trace(trace)
        assert table.process_names() == ["app.exe"]
        ((engine, start, finish),) = table.packet_intervals()
        assert engine == ENGINE_3D
        assert finish - start == 5 * MS
