"""Unit tests for the hardware specification catalog."""

import pytest

from repro.hardware import (
    CORE_I7_8700K,
    GTX_1080_TI,
    GTX_285,
    GTX_680,
    CpuSpec,
    GpuSpec,
    MachineSpec,
    machine_2000,
    machine_2010,
    paper_machine,
)


class TestCpuSpec:
    def test_paper_cpu_matches_table1(self):
        assert CORE_I7_8700K.physical_cores == 6
        assert CORE_I7_8700K.smt_ways == 2
        assert CORE_I7_8700K.logical_cpus == 12
        assert CORE_I7_8700K.base_clock_ghz == 3.70
        assert CORE_I7_8700K.turbo_clock_ghz == 4.70
        assert CORE_I7_8700K.llc_mb == 12

    def test_invalid_core_count_rejected(self):
        with pytest.raises(ValueError):
            CpuSpec("bad", 0, 1, 1.0, 1.0, 1)

    def test_invalid_smt_ways_rejected(self):
        with pytest.raises(ValueError):
            CpuSpec("bad", 2, 0, 1.0, 1.0, 1)


class TestGpuSpec:
    def test_1080ti_matches_paper(self):
        assert GTX_1080_TI.cuda_cores == 3584
        assert GTX_1080_TI.clock_mhz == 1481

    def test_680_matches_paper(self):
        assert GTX_680.cuda_cores == 1536
        assert GTX_680.clock_mhz == 1006
        assert not GTX_680.mining_optimized  # Kepler predates the boom

    def test_285_matches_paper(self):
        assert GTX_285.cuda_cores == 240
        assert GTX_285.clock_mhz == 648

    def test_paper_15x_core_claim(self):
        # "GTX 1080 Ti ... has 3584 CUDA cores (~15x more)" than GTX 285.
        assert GTX_1080_TI.cuda_cores / GTX_285.cuda_cores == pytest.approx(
            15, rel=0.01)

    def test_relative_throughput_ordering(self):
        assert GTX_1080_TI.throughput_relative_to(GTX_680) > 3.0
        assert GTX_680.throughput_relative_to(GTX_1080_TI) < 0.5

    def test_throughput_is_reciprocal(self):
        forward = GTX_1080_TI.throughput_relative_to(GTX_680)
        backward = GTX_680.throughput_relative_to(GTX_1080_TI)
        assert forward * backward == pytest.approx(1.0)


class TestMachineSpec:
    def test_paper_machine_has_12_logical_cpus(self):
        assert paper_machine().logical_cpus == 12

    def test_smt_disabled_halves_logical_cpus(self):
        machine = paper_machine().with_smt(False)
        assert machine.logical_cpus == 6
        assert machine.smt_ways == 1

    def test_core_scaling_restriction(self):
        machine = paper_machine().with_logical_cpus(4)
        assert machine.logical_cpus == 4

    def test_restriction_beyond_hardware_rejected(self):
        with pytest.raises(ValueError):
            paper_machine().with_logical_cpus(13)

    def test_restriction_respects_smt_off_limit(self):
        machine = paper_machine().with_smt(False)
        with pytest.raises(ValueError):
            machine.with_logical_cpus(7)

    def test_with_gpu_swaps_device_only(self):
        machine = paper_machine().with_gpu(GTX_680)
        assert machine.gpu is GTX_680
        assert machine.cpu is CORE_I7_8700K

    def test_machine_2010_matches_blake(self):
        machine = machine_2010()
        assert machine.cpu.physical_cores == 8
        assert machine.cpu.base_clock_ghz == pytest.approx(2.26)
        assert machine.ram_gb == 6
        assert machine.gpu is GTX_285

    def test_machine_2000_is_pre_smt(self):
        assert machine_2000().cpu.smt_ways == 1

    def test_specs_are_immutable(self):
        with pytest.raises(AttributeError):
            paper_machine().cpu.physical_cores = 8
