"""Tests for the experiment harness: runner, sweeps, suite."""

import pytest

from repro.apps.transcoding import HandBrake, WinXVideoConverter
from repro.harness import (
    core_scaling_sweep,
    gpu_swap_sweep,
    run_app,
    run_app_once,
    run_suite,
    smt_sweep,
)
from repro.hardware import GTX_1080_TI, GTX_680, paper_machine
from repro.sim import SECOND

SHORT = 15 * SECOND


class TestRunner:
    def test_run_app_once_by_name(self):
        result = run_app_once("excel", duration_us=SHORT, seed=2)
        assert result.app_name == "excel"
        assert result.tlp.tlp > 0
        assert "EXCEL.EXE" in result.process_names

    def test_run_app_once_with_config(self):
        result = run_app_once("winx", config={"use_gpu": False},
                              duration_us=SHORT, seed=2)
        assert result.outputs["gpu_path"] is False

    def test_config_rejected_for_model_instances(self):
        with pytest.raises(ValueError):
            run_app_once(HandBrake(), config={"x": 1}, duration_us=SHORT)

    def test_iterations_summarized(self):
        result = run_app("excel", duration_us=SHORT, iterations=3)
        assert result.tlp.n == 3
        assert result.tlp.std < 0.5  # paper: low sigma across iterations
        assert len(result.runs) == 3

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            run_app("excel", duration_us=SHORT, iterations=0)

    def test_keep_trace_retains_artifacts(self):
        result = run_app_once("excel", duration_us=SHORT, seed=2,
                              keep_trace=True)
        assert result.trace is not None
        assert result.cpu_table is not None
        assert result.trace.duration == SHORT

    def test_trace_not_kept_by_default(self):
        result = run_app_once("excel", duration_us=SHORT, seed=2)
        assert result.trace is None

    def test_memory_counters_aggregated(self):
        result = run_app_once("handbrake", duration_us=SHORT, seed=2)
        assert result.memory_counters.work_us > 0
        assert result.memory_counters.llc_misses > 0

    def test_fractions_averaged_over_iterations(self):
        result = run_app("vlc", duration_us=SHORT, iterations=2)
        assert len(result.fractions) == 13
        assert sum(result.fractions) == pytest.approx(1.0, abs=1e-6)


class TestSweeps:
    def test_core_scaling_monotone_for_scalable_app(self):
        sweep = core_scaling_sweep(lambda: HandBrake(),
                                   logical_cpus=(4, 8, 12),
                                   duration_us=SHORT)
        tlps = [sweep[n].tlp.mean for n in (4, 8, 12)]
        assert tlps[0] < tlps[1] < tlps[2]
        assert tlps[0] == pytest.approx(4.0, abs=0.6)

    def test_core_scaling_flat_for_serial_app(self):
        sweep = core_scaling_sweep(lambda: __import__(
            "repro.apps.office", fromlist=["Excel"]).Excel(),
            logical_cpus=(4, 12), duration_us=SHORT)
        assert abs(sweep[12].tlp.mean - sweep[4].tlp.mean) < 0.7

    def test_smt_sweep_shape(self):
        grid = smt_sweep(lambda: HandBrake(), physical_cores=(2, 6),
                         gpus=(GTX_1080_TI,), duration_us=SHORT)
        assert set(grid) == {(GTX_1080_TI.name, True, 2),
                             (GTX_1080_TI.name, True, 6),
                             (GTX_1080_TI.name, False, 2),
                             (GTX_1080_TI.name, False, 6)}

    def test_smt_lowers_transcode_rate(self):
        # The Fig. 8 headline: FU-bound encode loses throughput to SMT.
        grid = smt_sweep(lambda: HandBrake(), physical_cores=(6,),
                         gpus=(GTX_1080_TI,), duration_us=30 * SECOND)
        smt_frames = grid[(GTX_1080_TI.name, True, 6)].outputs["frames"]
        nosmt_frames = grid[(GTX_1080_TI.name, False, 6)].outputs["frames"]
        assert nosmt_frames >= smt_frames

    def test_gpu_swap_raises_utilization_on_weaker_gpu(self):
        sweep = gpu_swap_sweep(lambda: WinXVideoConverter(),
                               duration_us=SHORT)
        assert (sweep[GTX_680.name].gpu_util.mean
                > 2.0 * sweep[GTX_1080_TI.name].gpu_util.mean)

    def test_gpu_swap_keeps_nvenc_rate(self):
        # Fig. 8a: transcode rates overlap exactly across GPUs because
        # NVENC is fixed-function.
        sweep = gpu_swap_sweep(lambda: WinXVideoConverter(),
                               duration_us=SHORT)
        rate_680 = sweep[GTX_680.name].outputs["frames"]
        rate_1080 = sweep[GTX_1080_TI.name].outputs["frames"]
        assert rate_680 == pytest.approx(rate_1080, rel=0.06)


class TestSuite:
    @pytest.fixture(scope="class")
    def small_suite(self):
        return run_suite(names=("excel", "vlc", "handbrake", "wineth"),
                         duration_us=SHORT, iterations=1)

    def test_all_requested_apps_present(self, small_suite):
        assert set(small_suite.results) == {"excel", "vlc", "handbrake",
                                            "wineth"}

    def test_category_averages(self, small_suite):
        averages = small_suite.category_averages()
        assert len(averages) == 4
        for tlp, gpu in averages.values():
            assert tlp > 0 and gpu >= 0

    def test_overall_average(self, small_suite):
        overall = small_suite.overall_average_tlp()
        per_app = [r.tlp.mean for r in small_suite.results.values()]
        assert overall == pytest.approx(sum(per_app) / len(per_app))

    def test_threshold_filters(self, small_suite):
        above = small_suite.apps_with_tlp_above(4.0)
        assert "handbrake" in above
        assert "vlc" not in above

    def test_max_tlp_filter(self, small_suite):
        reaching = small_suite.apps_reaching_max_tlp(12)
        assert "handbrake" in reaching
