"""Hot-path mode equivalence: kernels, epochs, transports.

The perf modes are only allowed to exist because they are invisible:
``REPRO_KERNEL`` (scalar vs vectorized sweeps), ``REPRO_EPOCH``
(legacy event-at-a-time vs epoch-partitioned simulation) and
``REPRO_TRANSPORT`` (pickle vs shared-memory results) must all
produce bit-identical metrics.  These tests pin each mode against the
committed goldens on a cross-section of apps, and exercise the
shared-memory transport's encode/decode lifecycle directly —
including the fallback and discard paths a pool failure takes.
"""

import pickle

import pytest

from repro.harness.executor import ParallelExecutor, execute_spec, make_spec
from repro.harness.transport import (
    ShmHandle,
    decode_result,
    discard_result,
    encode_for_pipe,
    encode_result,
    shm_available,
    transport_backend,
)
from repro.sim import SECOND
from repro.validate import (
    GOLDEN_CONFIGS,
    compare_fingerprints,
    compute_fingerprints,
    config_id,
    load_goldens,
)

#: Same cross-section the golden suite uses for backend equivalence:
#: a GPU-heavy VR title, a browser, an office app.
CROSS_CHECK_APPS = ("word", "chrome", "arizona-sunshine")


@pytest.fixture(scope="module")
def goldens():
    return load_goldens()


def assert_matches_goldens(fingerprints, goldens, label):
    for app in CROSS_CHECK_APPS:
        for cores, smt in GOLDEN_CONFIGS:
            cid = config_id(cores, smt)
            mismatches = compare_fingerprints(
                goldens[app][cid], fingerprints[app][cid])
            assert not mismatches, f"{label}: {app}/{cid}: {mismatches}"


class TestModeEquivalence:
    def test_scalar_kernel_matches_goldens(self, goldens, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        assert_matches_goldens(compute_fingerprints(CROSS_CHECK_APPS),
                               goldens, "scalar kernel")

    def test_vector_kernel_matches_goldens(self, goldens, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "vector")
        assert_matches_goldens(compute_fingerprints(CROSS_CHECK_APPS),
                               goldens, "vector kernel")

    def test_legacy_epoch_matches_goldens(self, goldens, monkeypatch):
        monkeypatch.setenv("REPRO_EPOCH", "legacy")
        assert_matches_goldens(compute_fingerprints(CROSS_CHECK_APPS),
                               goldens, "legacy epoch")

    @pytest.mark.skipif(not shm_available(), reason="no shared memory")
    def test_shm_pool_matches_pickle_pool_and_goldens(
            self, goldens, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "shm")
        shm = compute_fingerprints(CROSS_CHECK_APPS,
                                   executor=ParallelExecutor(jobs=2))
        monkeypatch.setenv("REPRO_TRANSPORT", "pickle")
        pickled = compute_fingerprints(CROSS_CHECK_APPS,
                                       executor=ParallelExecutor(jobs=2))
        assert shm == pickled
        assert_matches_goldens(shm, goldens, "shm pool")


@pytest.mark.skipif(not shm_available(), reason="no shared memory")
class TestShmTransport:
    def _run(self, keep_trace=False):
        return execute_spec(make_spec("chrome", seed=2019,
                                      duration_us=1 * SECOND,
                                      keep_trace=keep_trace))

    def test_round_trip_metrics_only(self):
        run = self._run()
        handle = encode_result(run)
        assert isinstance(handle, ShmHandle)
        back = decode_result(handle)
        assert back.tlp == run.tlp
        assert back.gpu_util == run.gpu_util
        assert back.process_names == run.process_names

    def test_round_trip_with_trace(self):
        """The columnar trace crosses as raw buffers and reconstructs
        record-for-record; the WPA tables rebuild lazily."""
        run = self._run(keep_trace=True)
        back = decode_result(encode_result(run))
        assert back.trace.cswitches == run.trace.cswitches
        assert back.trace.gpu_packets == run.trace.gpu_packets
        assert back.trace.start_time == run.trace.start_time
        assert back.trace.stop_time == run.trace.stop_time
        assert back.cpu_table is not None
        assert back.cpu_table.busy_events() == run.cpu_table.busy_events()
        assert back.tlp == run.tlp

    def test_segment_is_consumed(self):
        run = self._run()
        handle = encode_result(run)
        decode_result(handle)
        # The segment was unlinked; decoding again must fail loudly,
        # not resurrect stale data.
        with pytest.raises(FileNotFoundError):
            decode_result(handle)

    def test_discard_unlinks(self):
        handle = encode_result(self._run())
        discard_result(handle)
        with pytest.raises(FileNotFoundError):
            decode_result(handle)

    def test_discard_tolerates_missing_segment(self):
        discard_result(ShmHandle(name="psm_repro_nonexistent", size=8))

    def test_unpicklable_result_falls_back(self):
        run = self._run()
        run.outputs["callback"] = lambda: None
        assert encode_result(run) is None

    def test_encode_for_pipe_respects_transport_env(self, monkeypatch):
        run = self._run()
        monkeypatch.setenv("REPRO_TRANSPORT", "pickle")
        assert encode_for_pipe(run) is run
        monkeypatch.setenv("REPRO_TRANSPORT", "shm")
        payload = encode_for_pipe(run)
        assert isinstance(payload, ShmHandle)
        decode_result(payload)

    def test_handle_is_tiny_on_the_pipe(self):
        run = self._run(keep_trace=True)
        handle = encode_result(run)
        try:
            assert len(pickle.dumps(handle)) < 200
            assert len(pickle.dumps(run)) > 10 * 1024
        finally:
            discard_result(handle)


class TestTransportSelection:
    def test_unknown_transport_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "bogus")
        with pytest.raises(ValueError):
            transport_backend()

    def test_pickle_always_available(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "pickle")
        assert transport_backend() == "pickle"
