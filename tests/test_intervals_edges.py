"""Zero-width and empty-window edge cases of the sweep helpers.

The validation layer leans on these invariant properties, so the edge
behaviour is pinned explicitly: zero-width windows and intervals are
well-defined no-ops, and empty measurement windows raise the
documented ``ValueError`` (never ``ZeroDivisionError``).
"""

import pytest

from repro.metrics import (
    clip,
    concurrency_profile,
    fused_sweep,
    interval_events,
    max_concurrency,
    measure_gpu_utilization,
    measure_tlp,
    tlp_result_from_profile,
    union_length,
)
from repro.metrics.gpu import gpu_result_from_totals
from repro.trace import CpuUsagePreciseTable, GpuUtilizationTable


INTERVALS = [(0, 10), (5, 15), (20, 30)]


class TestZeroWidthWindow:
    def test_fused_sweep(self):
        sweep = fused_sweep(INTERVALS, 7, 7)
        assert sweep.profile == {0: 0}
        assert sweep.union_length == 0
        assert sweep.max_concurrency == 0

    def test_fused_sweep_prebuilt_events(self):
        events = interval_events(INTERVALS)
        assert fused_sweep((), 7, 7, events=events).union_length == 0

    def test_union_length(self):
        assert union_length(INTERVALS, 7, 7) == 0

    def test_max_concurrency(self):
        assert max_concurrency(INTERVALS, 7, 7) == 0

    def test_concurrency_profile(self):
        assert concurrency_profile(INTERVALS, 7, 7) == {0: 0}


class TestZeroWidthIntervals:
    """A zero-width interval has no measure anywhere in the pipeline."""

    def test_clip_drops_empty_results(self):
        assert clip([(5, 5), (3, 9)], 0, 10) == [(3, 9)]

    def test_interval_events_pairs_cancel(self):
        events = interval_events([(5, 5)])
        # -1 sorts before +1 at the same instant, so the pair cancels
        # without ever producing a positive level.
        assert events == [(5, -1), (5, 1)]

    def test_fused_sweep_ignores_them(self):
        sweep = fused_sweep([(5, 5)], 0, 10)
        assert sweep.profile == {0: 10}
        assert sweep.union_length == 0
        assert sweep.max_concurrency == 0

    def test_mixed_with_real_intervals(self):
        sweep = fused_sweep([(2, 8), (5, 5)], 0, 10)
        assert sweep.union_length == 6
        assert sweep.max_concurrency == 1


class TestInvertedWindow:
    def test_fused_sweep_raises(self):
        with pytest.raises(ValueError):
            fused_sweep(INTERVALS, 10, 5)

    def test_union_length_raises(self):
        with pytest.raises(ValueError):
            union_length(INTERVALS, 10, 5)

    def test_max_concurrency_raises(self):
        with pytest.raises(ValueError):
            max_concurrency(INTERVALS, 10, 5)


class TestEmptyMeasurementWindow:
    """TLP / GPU utilization of an empty window: documented ValueError."""

    def test_tlp_result_from_profile(self):
        with pytest.raises(ValueError, match="empty measurement window"):
            tlp_result_from_profile({0: 0}, 0, 4, 0)

    def test_gpu_result_from_totals(self):
        with pytest.raises(ValueError, match="empty measurement window"):
            gpu_result_from_totals(0, 0, 0, 0, "sum")

    def test_measure_tlp_zero_width_explicit_window(self):
        table = CpuUsagePreciseTable([], 0, 100)
        with pytest.raises(ValueError, match="empty measurement window"):
            measure_tlp(table, 4, window=(50, 50))

    def test_measure_tlp_empty_trace(self):
        # A session stopped the instant it started: zero-length trace.
        table = CpuUsagePreciseTable([], 42, 42)
        with pytest.raises(ValueError, match="empty measurement window"):
            measure_tlp(table, 4)

    def test_measure_gpu_empty_trace(self):
        table = GpuUtilizationTable([], 42, 42)
        with pytest.raises(ValueError, match="empty measurement window"):
            measure_gpu_utilization(table)

    def test_empty_table_nonzero_window_is_fine(self):
        result = measure_tlp(CpuUsagePreciseTable([], 0, 100), 4)
        assert result.tlp == 0.0
        assert result.fractions[0] == 1.0
        assert result.max_instantaneous == 0
