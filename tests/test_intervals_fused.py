"""Property tests: the fused single-pass sweep matches the reference.

``fused_sweep`` (and the dedicated single-pass ``union_length`` /
``max_concurrency``) replace the old build-events-clip-and-sort-per-
query implementation.  The reference below *is* that old
implementation; the properties assert exact equality on randomized
interval sets, including intervals partially or entirely outside the
measurement window.
"""

from hypothesis import given, strategies as st

from repro.metrics import (
    concurrency_profile,
    fused_sweep,
    interval_events,
    max_concurrency,
    union_length,
)
from repro.metrics.intervals import clip

WINDOW = (1_000, 21_000)


def reference_profile(intervals, window_start, window_stop):
    """The seed implementation: clip, build events, sort, sweep."""
    total = window_stop - window_start
    profile = {0: total}
    events = []
    for start, stop in clip(intervals, window_start, window_stop):
        events.append((start, 1))
        events.append((stop, -1))
    if not events:
        return profile
    events.sort()
    level = 0
    covered = 0
    prev_time = events[0][0]
    for time, delta in events:
        if time > prev_time:
            span = time - prev_time
            profile[level] = profile.get(level, 0) + span
            if level > 0:
                covered += span
            prev_time = time
        level += delta
    profile[0] = total - covered
    return profile


intervals_strategy = st.lists(
    st.tuples(st.integers(-5_000, 30_000), st.integers(1, 12_000)).map(
        lambda p: (p[0], p[0] + p[1])),
    max_size=40,
)


@given(intervals_strategy)
def test_fused_profile_matches_reference(intervals):
    expected = reference_profile(intervals, *WINDOW)
    sweep = fused_sweep(intervals, *WINDOW)
    assert sweep.profile == expected
    assert concurrency_profile(intervals, *WINDOW) == expected


@given(intervals_strategy)
def test_fused_union_and_max_match_reference(intervals):
    expected = reference_profile(intervals, *WINDOW)
    sweep = fused_sweep(intervals, *WINDOW)
    assert sweep.union_length == sum(
        length for level, length in expected.items() if level > 0)
    assert sweep.max_concurrency == max(
        (level for level, length in expected.items()
         if level > 0 and length > 0), default=0)


@given(intervals_strategy)
def test_standalone_single_pass_helpers_match_fused(intervals):
    sweep = fused_sweep(intervals, *WINDOW)
    assert union_length(intervals, *WINDOW) == sweep.union_length
    assert max_concurrency(intervals, *WINDOW) == sweep.max_concurrency


@given(intervals_strategy)
def test_presorted_events_path_is_equivalent(intervals):
    events = interval_events(intervals)
    assert fused_sweep(intervals, *WINDOW) == \
        fused_sweep((), *WINDOW, events=events)
    assert union_length((), *WINDOW, events=events) == \
        union_length(intervals, *WINDOW)
    assert max_concurrency((), *WINDOW, events=events) == \
        max_concurrency(intervals, *WINDOW)


@given(intervals_strategy, st.integers(0, 20))
def test_windowed_queries_share_one_event_array(intervals, offset):
    """Sub-window queries over one cached event array equal clip-first."""
    events = interval_events(intervals)
    lo = WINDOW[0] + offset * 500
    hi = min(lo + 4_000, WINDOW[1])
    assert fused_sweep((), lo, hi, events=events).profile == \
        reference_profile(intervals, lo, hi)


def test_degenerate_window():
    assert fused_sweep([(0, 10)], 5, 5).profile == {0: 0}
    assert union_length([(0, 10)], 5, 5) == 0
    assert max_concurrency([(0, 10)], 5, 5) == 0
