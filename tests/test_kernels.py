"""Property tests: batched sweep kernels == scalar kernels, exactly.

The ``REPRO_KERNEL=vector`` backend (:mod:`repro.metrics.kernels`)
must be bit-identical to the scalar tuple-list sweep on *every* input,
including the adversarial edges the vectorized math could plausibly
get wrong: zero-length windows, duplicate timestamps (many intervals
sharing endpoints), single-event traces, intervals entirely outside
the window, and start/stop ties where the ``-1`` must sort first.
Hypothesis drives randomized interval sets through both backends and
asserts exact equality of profile, union length, peak and the GPU
busy integral.
"""

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import fused_sweep, interval_events
from repro.metrics.kernels import (
    build_event_arrays,
    clipped_busy_sum,
    fused_sweep_arrays,
    kernel_backend,
    max_concurrency_arrays,
    occupancy_sweep,
    union_length_arrays,
)

WINDOW = (1_000, 21_000)

# Small coordinate space on purpose: collisions (shared endpoints,
# duplicate intervals, stop == next start) should be common, not rare.
intervals_strategy = st.lists(
    st.tuples(st.integers(-2_000, 23_000), st.integers(0, 9))
    .map(lambda p: (p[0] * 1_000, (p[0] + p[1]) * 1_000)),
    max_size=40,
)


def scalar_reference(intervals, window_start, window_stop):
    """(FusedSweep, busy_sum) via the scalar paths — the ground truth."""
    sweep = fused_sweep(intervals, window_start, window_stop)
    busy = sum(min(e, window_stop) - max(s, window_start)
               for s, e in intervals
               if min(e, window_stop) > max(s, window_start))
    return sweep, busy


def to_columns(intervals):
    starts = array("q", (s for s, _ in intervals))
    stops = array("q", (e for _, e in intervals))
    return starts, stops


class TestVectorEqualsScalar:
    @given(intervals_strategy)
    def test_sweep_matches_scalar(self, intervals):
        expected, expected_busy = scalar_reference(intervals, *WINDOW)
        times, deltas = build_event_arrays(*to_columns(intervals))
        actual, busy = occupancy_sweep(times, deltas, *WINDOW)
        assert actual.profile == expected.profile
        assert actual.union_length == expected.union_length
        assert actual.max_concurrency == expected.max_concurrency
        assert busy == expected_busy

    @given(intervals_strategy)
    def test_event_arrays_match_interval_events(self, intervals):
        """Same edges, same order — including the -1-before-+1 ties."""
        times, deltas = build_event_arrays(*to_columns(intervals))
        assert list(zip(times, deltas)) == interval_events(intervals)

    @given(intervals_strategy)
    def test_wrappers_match_scalar(self, intervals):
        expected, _ = scalar_reference(intervals, *WINDOW)
        times, deltas = build_event_arrays(*to_columns(intervals))
        sweep = fused_sweep_arrays(times, deltas, *WINDOW)
        assert sweep.profile == expected.profile
        assert union_length_arrays(times, deltas, *WINDOW) == \
            expected.union_length
        assert max_concurrency_arrays(times, deltas, *WINDOW) == \
            expected.max_concurrency

    @given(intervals_strategy)
    def test_clipped_busy_sum_matches_loop(self, intervals):
        starts, stops = to_columns(intervals)
        _, expected_busy = scalar_reference(intervals, *WINDOW)
        assert clipped_busy_sum(starts, stops, *WINDOW) == expected_busy

    @given(intervals_strategy, st.integers(0, 25_000_000))
    def test_zero_length_window(self, intervals, at):
        """A zero-measure window: empty profile, no peak, no busy."""
        times, deltas = build_event_arrays(*to_columns(intervals))
        sweep, busy = occupancy_sweep(times, deltas, at, at)
        assert (sweep.profile, sweep.union_length,
                sweep.max_concurrency, busy) == ({0: 0}, 0, 0, 0)

    def test_single_event_trace(self):
        for interval in ((5_000, 5_001), (0, 50_000), (WINDOW[0], WINDOW[0]),
                         (21_000, 30_000), (-10, 0)):
            expected, expected_busy = scalar_reference([interval], *WINDOW)
            times, deltas = build_event_arrays(*to_columns([interval]))
            actual, busy = occupancy_sweep(times, deltas, *WINDOW)
            assert actual.profile == expected.profile, interval
            assert busy == expected_busy, interval

    @given(st.integers(0, 22), st.integers(1, 64))
    def test_duplicate_timestamps_stack(self, start_k, copies):
        """``copies`` identical intervals: peak == copies inside window."""
        interval = (start_k * 1_000, start_k * 1_000 + 1_000)
        intervals = [interval] * copies
        expected, expected_busy = scalar_reference(intervals, *WINDOW)
        times, deltas = build_event_arrays(*to_columns(intervals))
        actual, busy = occupancy_sweep(times, deltas, *WINDOW)
        assert actual.profile == expected.profile
        assert actual.max_concurrency == expected.max_concurrency
        assert busy == expected_busy

    def test_inverted_window_raises(self):
        times, deltas = build_event_arrays(array("q"), array("q"))
        with pytest.raises(ValueError):
            occupancy_sweep(times, deltas, 10, 5)

    @given(intervals_strategy)
    @settings(max_examples=25)
    def test_mask_selects_subset(self, intervals):
        starts, stops = to_columns(intervals)
        mask = [i % 2 for i in range(len(intervals))]
        kept = [iv for iv, keep in zip(intervals, mask) if keep]
        times, deltas = build_event_arrays(starts, stops, mask=mask)
        assert list(zip(times, deltas)) == interval_events(kept)


class TestBackendSelection:
    def test_unknown_kernel_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "bogus")
        with pytest.raises(ValueError):
            kernel_backend()

    def test_choices_resolve(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        assert kernel_backend() == "scalar"
        monkeypatch.setenv("REPRO_KERNEL", "vector")
        assert kernel_backend() == "vector"
        monkeypatch.delenv("REPRO_KERNEL")
        assert kernel_backend() == "vector"   # auto
        assert kernel_backend("scalar") == "scalar"
