"""Property-based proof of the job ledger's recovery guarantees.

The durability claim: a daemon killed at *any* moment — mid-record,
mid-line, between fsyncs — restarts from whatever prefix of the ledger
made it to disk, never crashes on the torn tail, never re-simulates a
span the content-addressed cache already holds, and serves payloads
byte-identical to the uninterrupted run.  Hypothesis truncates a real
ledger (built by running sweeps to completion once, module-level) at
arbitrary byte offsets and replays each prefix through a fresh
service; deterministic unit tests below pin the replay state machine
itself.
"""

import json
import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import SweepService
from repro.service.http import HttpRequest
from repro.service.ledger import JobLedger, LedgerJob, replay

#: Distinct sweeps that populate the module ledger (cheap after the
#: first simulation warms the shared cache).
CANDIDATES = (
    {"apps": ["excel"], "duration_s": 0.25, "iterations": 1},
    {"apps": ["vlc"], "duration_s": 0.25, "iterations": 1},
    {"apps": ["excel", "vlc"], "duration_s": 0.25, "iterations": 1},
)

#: Module-level state: one completed run builds the reference ledger
#: and warms the cache every truncated replay restores from.
_TMP = tempfile.mkdtemp(prefix="ledger-prop-")
_CACHE = os.path.join(_TMP, "cache")
_LEDGER_BYTES = None
_BASELINE = {}          # job id -> result bytes from the clean run
_COUNTER = [0]


def request(method, path, body=None):
    payload = json.dumps(body).encode("utf-8") if body is not None else b""
    return HttpRequest(method=method, target=path, path=path, query={},
                       headers={}, body=payload)


def reference_ledger():
    """Run every candidate to completion once; returns the full ledger
    bytes (header + submitted/started/finished per candidate)."""
    global _LEDGER_BYTES
    if _LEDGER_BYTES is None:
        path = os.path.join(_TMP, "reference.jsonl")
        service = SweepService(ledger=path, cache=_CACHE)
        try:
            for candidate in CANDIDATES:
                response = service.dispatch(
                    request("POST", "/sweeps", candidate))
                job_id = json.loads(response.body)["id"]
                job = service.store.find(job_id)
                assert job.wait_done(180) and job.state == "done"
                _BASELINE[job_id] = job.result_bytes
        finally:
            service.close()
        _LEDGER_BYTES = open(path, "rb").read()
    return _LEDGER_BYTES


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_truncation_at_any_byte_recovers_without_resimulation(data):
    blob = reference_ledger()
    cut = data.draw(st.integers(min_value=0, max_value=len(blob)))
    _COUNTER[0] += 1
    path = os.path.join(_TMP, f"truncated-{_COUNTER[0]}.jsonl")
    with open(path, "wb") as handle:
        handle.write(blob[:cut])

    # Replay never crashes on a torn tail, and never invents jobs.
    entries = replay(path)
    assert all(isinstance(e, LedgerJob) for e in entries)
    assert {e.id for e in entries} <= set(_BASELINE)

    service = SweepService(ledger=path, cache=_CACHE)
    try:
        jobs = service.store.all()
        assert {j.id for j in jobs} == {e.id for e in entries}
        for job in jobs:
            assert job.recovered in ("finished", "interrupted")
            assert job.wait_done(180) and job.state == "done"
            # Zero re-simulation: every span restores from the cache.
            assert job.executed == 0
            assert job.cache_hits == len(job.specs)
            assert job.result_bytes == _BASELINE[job.id]
    finally:
        service.close()
    # The healed ledger parses cleanly end to end: the torn tail was
    # truncated on open and the recovery's own records appended.
    final = replay(path)
    assert all(not e.interrupted for e in final
               if e.id in {j.id for j in jobs})
    assert open(path, "rb").read().endswith(b"\n") or cut == 0


class TestLedgerUnit:
    def test_round_trip_restores_states(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        ledger = JobLedger(path).open()
        ledger.record_submitted("a" * 64, {"apps": ["excel"]})
        ledger.record_started("a" * 64)
        ledger.record_finished("a" * 64, executed=3, failures=[])
        ledger.record_submitted("b" * 64, {"apps": ["vlc"]})
        ledger.record_started("b" * 64)
        ledger.record_submitted("c" * 64, {"apps": ["word"]})
        ledger.close()

        jobs = {job.id: job for job in replay(path)}
        assert jobs["a" * 64].state == "finished"
        assert jobs["a" * 64].executed == 3
        assert not jobs["a" * 64].interrupted
        assert jobs["b" * 64].state == "started"
        assert jobs["b" * 64].interrupted
        assert jobs["c" * 64].state == "submitted"
        assert jobs["c" * 64].interrupted
        assert [job.id for job in replay(path)] == \
            ["a" * 64, "b" * 64, "c" * 64]

    def test_failed_jobs_are_not_interrupted(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        ledger = JobLedger(path).open()
        ledger.record_submitted("a" * 64, {})
        ledger.record_started("a" * 64)
        ledger.record_failed("a" * 64, "boom")
        ledger.close()
        (job,) = replay(path)
        assert job.state == "failed" and job.error == "boom"
        assert not job.interrupted

    def test_resubmission_after_failure_restarts_lifecycle(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        ledger = JobLedger(path).open()
        ledger.record_submitted("a" * 64, {"try": 1})
        ledger.record_failed("a" * 64, "boom")
        ledger.record_submitted("a" * 64, {"try": 2})
        ledger.close()
        (job,) = replay(path)
        assert job.state == "submitted" and job.interrupted
        assert job.request == {"try": 2}

    def test_missing_ledger_is_empty(self, tmp_path):
        assert replay(tmp_path / "absent.jsonl") == []

    def test_non_ledger_file_rejected(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("just some notes\n")
        try:
            replay(path)
        except ValueError as exc:
            assert "ledger" in str(exc)
        else:       # pragma: no cover - the assertion is the raise
            raise AssertionError("replay accepted a non-ledger file")

    def test_interior_corruption_rejected(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        ledger = JobLedger(path).open()
        ledger.record_submitted("a" * 64, {})
        ledger.close()
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2] + b"garbage\n" + b"{}\n")
        try:
            replay(path)
        except ValueError:
            pass
        else:       # pragma: no cover
            raise AssertionError("replay accepted interior corruption")

    def test_open_heals_torn_tail(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        ledger = JobLedger(path).open()
        ledger.record_submitted("a" * 64, {})
        ledger.close()
        blob = path.read_bytes()
        path.write_bytes(blob + b'{"event": "submi')     # torn append
        healed = JobLedger(path).open()
        healed.record_submitted("b" * 64, {})
        healed.close()
        assert [job.id for job in replay(path)] == ["a" * 64, "b" * 64]
