"""Tests for the ``repro lint`` CLI verb."""

import json
import textwrap

from repro.cli import main


def run_cli(argv):
    lines = []
    code = main(argv, out=lines.append)
    return code, "\n".join(str(line) for line in lines)


class TestLintCommand:
    def test_all_apps_clean(self):
        code, output = run_cli(["lint", "--all-apps"])
        assert code == 0
        assert "lint: no findings" in output
        assert "Static structure and TLP bounds" in output
        # every registered app appears in the bounds table
        assert "chrome" in output and "wineth" in output

    def test_subset_without_ast(self):
        code, output = run_cli(["lint", "--apps", "vlc,word", "--no-ast"])
        assert code == 0
        assert "vlc" in output and "word" in output
        assert "chrome" not in output

    def test_unknown_app_rejected(self):
        code, output = run_cli(["lint", "--apps", "nope"])
        assert code == 2
        assert "unknown applications" in output

    def test_findings_fail_the_run(self, tmp_path):
        bad = tmp_path / "bad_model.py"
        bad.write_text(textwrap.dedent("""
            import random

            def body(ctx):
                ctx.sleep(random.randint(1, 5))
                yield ctx.cpu(1)
            """))
        code, output = run_cli(
            ["lint", "--apps", "word", "--paths", str(bad)])
        assert code == 1
        assert "blocking-call-outside-yield" in output
        assert "unseeded-rng" in output

    def test_fail_on_threshold(self, tmp_path):
        bad = tmp_path / "warn_only.py"
        bad.write_text("import random\nx = random.random()\n")
        argv = ["lint", "--apps", "word", "--paths", str(bad)]
        assert run_cli(argv)[0] == 1                      # warning fails
        assert run_cli(argv + ["--fail-on", "error"])[0] == 0

    def test_json_report(self, tmp_path):
        target = tmp_path / "report.json"
        code, output = run_cli(
            ["lint", "--apps", "wineth", "--json", str(target)])
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["counts"] == {"error": 0, "warning": 0, "info": 0}
        app = payload["apps"]["wineth"]
        assert app["complete"] is True
        assert app["tlp_bound"] == 3.0
        assert app["threads"] == 3

    def test_machine_flags_change_bound(self, tmp_path):
        target = tmp_path / "report.json"
        code, _output = run_cli(
            ["lint", "--apps", "chrome", "--cores", "4", "--no-smt",
             "--no-ast", "--json", str(target)])
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["logical_cpus"] == 4
        assert payload["apps"]["chrome"]["tlp_bound"] == 4.0
