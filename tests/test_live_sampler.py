"""Tests for the live /proc TLP sampler (Linux only)."""

import os
import subprocess
import sys
import time

import pytest

from repro.live import LinuxTlpSampler, child_pids, running_threads

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/proc/self/task"),
    reason="requires a Linux /proc filesystem")

_SPINNER = ("import time,sys;"
            "end=time.time()+float(sys.argv[1]);\n"
            "while time.time()<end: pass")

_SLEEPER = "import time,sys; time.sleep(float(sys.argv[1]))"


def spawn(code, seconds):
    return subprocess.Popen([sys.executable, "-c", code, str(seconds)])


class TestPrimitives:
    def test_self_has_at_least_one_running_thread(self):
        # This test itself is running right now.
        assert running_threads([os.getpid()]) >= 1

    def test_dead_pid_counts_zero(self):
        process = spawn(_SLEEPER, 0.01)
        process.wait()
        assert running_threads([process.pid]) == 0

    def test_child_pids_discovers_subprocess(self):
        process = spawn(_SLEEPER, 3)
        try:
            time.sleep(0.2)
            children = child_pids(os.getpid())
            assert process.pid in children
        finally:
            process.kill()
            process.wait()


class TestSampler:
    def test_requires_pids(self):
        with pytest.raises(ValueError):
            LinuxTlpSampler([])

    def test_result_requires_samples(self):
        with pytest.raises(ValueError):
            LinuxTlpSampler([os.getpid()]).result()

    def test_validation_of_run_args(self):
        sampler = LinuxTlpSampler([os.getpid()])
        with pytest.raises(ValueError):
            sampler.run(0)

    def test_sleeping_process_samples_near_zero(self):
        process = spawn(_SLEEPER, 3)
        try:
            time.sleep(0.2)
            sampler = LinuxTlpSampler([process.pid],
                                      include_children=False)
            sampler.run(0.4, interval_s=0.01)
            result = sampler.result()
            # Nearly every sample sees 0 running threads.
            assert result.fractions[0] > 0.8
        finally:
            process.kill()
            process.wait()

    @pytest.mark.skipif((os.cpu_count() or 1) < 3,
                        reason="needs >= 3 CPUs for a parallelism test")
    def test_three_spinners_sample_near_tlp_three(self):
        spinners = [spawn(_SPINNER, 4) for _ in range(3)]
        try:
            time.sleep(0.3)
            sampler = LinuxTlpSampler([p.pid for p in spinners],
                                      include_children=False)
            sampler.run(0.8, interval_s=0.01)
            result = sampler.result()
            assert result.tlp == pytest.approx(3.0, abs=0.8)
            assert result.max_instantaneous >= 2
        finally:
            for process in spinners:
                process.kill()
                process.wait()

    def test_counts_clamped_to_n_logical(self):
        sampler = LinuxTlpSampler([os.getpid()], n_logical=1)
        sampler.samples = []
        sampler.sample_once()
        assert sampler.samples[0] <= 1
