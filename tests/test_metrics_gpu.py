"""Unit tests for GPU utilization metrics and cross-validation."""

import pytest

from repro.gpu import ENGINE_3D, ENGINE_COMPUTE, GpuDevice
from repro.metrics import cross_validate, measure_gpu_utilization
from repro.sim import MS, Environment
from repro.trace import GpuUtilizationTable, TraceSession


def table_from_packets(packets, start=0, stop=1000):
    """packets: iterable of (engine, start_execution, finished)."""
    rows = [("miner.exe", 8, engine, "kernel", s, s, e)
            for engine, s, e in packets]
    return GpuUtilizationTable(rows, start, stop)


class TestSumMethod:
    def test_single_packet_fraction(self):
        table = table_from_packets([(ENGINE_3D, 0, 250)])
        result = measure_gpu_utilization(table)
        assert result.utilization_pct == pytest.approx(25.0)
        assert not result.capped

    def test_empty_table_is_zero(self):
        result = measure_gpu_utilization(table_from_packets([]))
        assert result.utilization_pct == 0.0
        assert result.max_concurrent_packets == 0

    def test_sum_of_ratios_counts_overlap_twice(self):
        # Two engines each busy the whole window: the paper's
        # PhoenixMiner case — sum saturates and is flagged.
        table = table_from_packets([
            (ENGINE_3D, 0, 1000), (ENGINE_COMPUTE, 0, 1000)])
        result = measure_gpu_utilization(table)
        assert result.utilization_pct == 100.0
        assert result.capped
        assert result.max_concurrent_packets == 2

    def test_packets_clipped_to_window(self):
        table = table_from_packets([(ENGINE_3D, 0, 500)])
        result = measure_gpu_utilization(table, window=(250, 750))
        assert result.utilization_pct == pytest.approx(50.0)

    def test_process_filtering(self):
        rows = [
            ("a.exe", 1, ENGINE_3D, "frame", 0, 0, 500),
            ("b.exe", 2, ENGINE_3D, "frame", 500, 500, 1000),
        ]
        table = GpuUtilizationTable(rows, 0, 1000)
        a_only = measure_gpu_utilization(table, processes={"a.exe"})
        assert a_only.utilization_pct == pytest.approx(50.0)


class TestUnionMethod:
    def test_union_does_not_double_count(self):
        table = table_from_packets([
            (ENGINE_3D, 0, 600), (ENGINE_COMPUTE, 0, 600)])
        result = measure_gpu_utilization(table, method="union")
        assert result.utilization_pct == pytest.approx(60.0)
        assert not result.capped

    def test_methods_agree_without_overlap(self):
        table = table_from_packets([
            (ENGINE_3D, 0, 300), (ENGINE_3D, 400, 700)])
        by_sum = measure_gpu_utilization(table, method="sum")
        by_union = measure_gpu_utilization(table, method="union")
        assert by_sum.utilization_pct == pytest.approx(
            by_union.utilization_pct)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            measure_gpu_utilization(table_from_packets([]), method="median")

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            measure_gpu_utilization(table_from_packets([]), window=(5, 5))


class TestCrossValidation:
    def test_device_counters_match_trace(self):
        env = Environment()
        session = TraceSession(env)
        session.start()
        device = GpuDevice(env, __import__(
            "repro.hardware", fromlist=["GTX_1080_TI"]).GTX_1080_TI, session)

        class Process:
            name, pid = "app.exe", 8

        for _ in range(4):
            device.submit(Process(), ENGINE_3D, "frame", 5 * MS)
        env.run()
        trace = session.stop()
        table = GpuUtilizationTable.from_trace(trace)
        delta = cross_validate(table, device)
        assert delta < 0.5

    def test_mismatch_detected(self):
        env = Environment()
        from repro.hardware import GTX_1080_TI

        device = GpuDevice(env, GTX_1080_TI, TraceSession(env))
        # Hand-built table claims busy time the device never executed.
        table = table_from_packets([(ENGINE_3D, 0, 900)], stop=1000)
        with pytest.raises(ValueError):
            cross_validate(table, device)
