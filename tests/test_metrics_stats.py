"""Unit tests for iteration statistics helpers."""

import pytest

from repro.metrics import mean, relative_difference_pct, summarize


class TestSummarize:
    def test_mean_and_std(self):
        summary = summarize([2.0, 4.0, 6.0])
        assert summary.mean == pytest.approx(4.0)
        assert summary.std == pytest.approx(1.63299, rel=1e-4)
        assert summary.n == 3

    def test_single_value_has_zero_std(self):
        summary = summarize([3.3])
        assert summary.std == 0.0
        assert summary.minimum == summary.maximum == 3.3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_format(self):
        text = str(summarize([1.0, 2.0, 3.0]))
        assert "2.0" in text and "n=3" in text


class TestMean:
    def test_mean(self):
        assert mean([1, 2, 3, 4]) == pytest.approx(2.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])


class TestRelativeDifference:
    def test_positive_difference(self):
        assert relative_difference_pct(110, 100) == pytest.approx(10.0)

    def test_negative_difference(self):
        assert relative_difference_pct(90, 100) == pytest.approx(-10.0)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            relative_difference_pct(1, 0)
