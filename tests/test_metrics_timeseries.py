"""Unit tests for windowed time series (instantaneous TLP/GPU/FPS)."""

import pytest

from repro.metrics import (
    frame_rate_series,
    instantaneous_gpu_utilization,
    instantaneous_tlp,
)
from repro.sim import SECOND
from repro.trace import CpuUsagePreciseTable, FramePresentRecord, GpuUtilizationTable


class TestInstantaneousTlp:
    def test_windows_capture_phases(self):
        # Two CPUs busy in the first second, one in the second second.
        rows = [
            ("app.exe", 8, 1, "a", 0, 0, 0, SECOND),
            ("app.exe", 8, 2, "b", 1, 0, 0, SECOND),
            ("app.exe", 8, 1, "a", 0, SECOND, SECOND, 2 * SECOND),
        ]
        table = CpuUsagePreciseTable(rows, 0, 2 * SECOND)
        series = instantaneous_tlp(table, n_logical=4, step_us=SECOND)
        assert len(series) == 2
        assert series.values[0] == pytest.approx(2.0)
        assert series.values[1] == pytest.approx(1.0)

    def test_idle_window_is_zero(self):
        rows = [("app.exe", 8, 1, "a", 0, 0, 0, SECOND)]
        table = CpuUsagePreciseTable(rows, 0, 3 * SECOND)
        series = instantaneous_tlp(table, n_logical=4, step_us=SECOND)
        assert series.values[1] == 0.0
        assert series.values[2] == 0.0

    def test_times_and_helpers(self):
        rows = [("app.exe", 8, 1, "a", 0, 0, 0, SECOND)]
        table = CpuUsagePreciseTable(rows, 0, 2 * SECOND)
        series = instantaneous_tlp(table, 4, step_us=SECOND)
        assert series.times_seconds() == [0.0, 1.0]
        assert series.maximum() == pytest.approx(1.0)
        assert series.mean() == pytest.approx(0.5)

    def test_invalid_step_rejected(self):
        table = CpuUsagePreciseTable([], 0, SECOND)
        with pytest.raises(ValueError):
            instantaneous_tlp(table, 4, step_us=0)


class TestInstantaneousGpu:
    def test_busy_then_idle(self):
        rows = [("app.exe", 8, "3D", "frame", 0, 0, SECOND)]
        table = GpuUtilizationTable(rows, 0, 2 * SECOND)
        series = instantaneous_gpu_utilization(table, step_us=SECOND)
        assert series.values == [pytest.approx(100.0), pytest.approx(0.0)]


class TestFrameRate:
    def test_counts_frames_per_second(self):
        frames = [FramePresentRecord("game.exe", 8, t, 90)
                  for t in range(0, 2 * SECOND, SECOND // 90)]
        series = frame_rate_series(frames, 0, 2 * SECOND)
        assert len(series) == 2
        assert series.values[0] == pytest.approx(90, abs=1)

    def test_process_filtering(self):
        frames = [
            FramePresentRecord("game.exe", 8, 0, 90),
            FramePresentRecord("other.exe", 9, 1, 90),
        ]
        series = frame_rate_series(frames, 0, SECOND,
                                   processes={"game.exe"})
        assert series.values[0] == pytest.approx(1.0)

    def test_partial_final_window_scales(self):
        frames = [FramePresentRecord("g", 1, t, 90)
                  for t in range(0, SECOND // 2, SECOND // 90)]
        series = frame_rate_series(frames, 0, SECOND // 2)
        # 45 frames in half a second -> 90 FPS.
        assert series.values[0] == pytest.approx(90, abs=2)

    def test_empty_series(self):
        series = frame_rate_series([], 0, SECOND)
        assert series.values == [0.0]
        assert series.maximum() == 0.0
