"""Unit tests for TLP metrics (Equation 1) and interval machinery."""

import pytest

from repro.metrics import (
    concurrency_profile,
    max_concurrency,
    measure_tlp,
    tlp_from_fractions,
    union_length,
)
from repro.trace import CpuUsagePreciseTable


def table_from_intervals(intervals, start=0, stop=100):
    """Build a CPU table where each (cpu, s, e) is one app interval."""
    rows = [("app.exe", 8, 8000 + i, f"t{i}", cpu, s, s, e)
            for i, (cpu, s, e) in enumerate(intervals)]
    return CpuUsagePreciseTable(rows, start, stop)


class TestIntervals:
    def test_profile_of_empty_set_is_all_idle(self):
        assert concurrency_profile([], 0, 100) == {0: 100}

    def test_profile_partitions_window(self):
        profile = concurrency_profile([(10, 40), (30, 60)], 0, 100)
        assert sum(profile.values()) == 100
        assert profile[2] == 10  # overlap 30..40
        assert profile[1] == 40  # 10..30 and 40..60
        assert profile[0] == 50

    def test_profile_clips_to_window(self):
        profile = concurrency_profile([(-50, 20)], 0, 100)
        assert profile[1] == 20

    def test_identical_intervals_stack(self):
        profile = concurrency_profile([(0, 10)] * 3, 0, 10)
        assert profile[3] == 10

    def test_union_length(self):
        assert union_length([(0, 10), (5, 20), (30, 40)], 0, 100) == 30

    def test_max_concurrency(self):
        intervals = [(0, 10), (2, 8), (4, 6), (50, 60)]
        assert max_concurrency(intervals, 0, 100) == 3

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            concurrency_profile([], 10, 0)


class TestEquationOne:
    def test_single_thread_always_running(self):
        # c = [0, 1.0] -> TLP 1.0
        assert tlp_from_fractions([0.0, 1.0]) == pytest.approx(1.0)

    def test_idle_time_is_factored_out(self):
        # Half idle, half 1 thread: TLP is still 1.0 by Eq. 1.
        assert tlp_from_fractions([0.5, 0.5]) == pytest.approx(1.0)

    def test_paper_equation_worked_example(self):
        # c0=0.2, c1=0.4, c2=0.4 -> (0.4*1 + 0.4*2) / 0.8 = 1.5
        assert tlp_from_fractions([0.2, 0.4, 0.4]) == pytest.approx(1.5)

    def test_fully_parallel(self):
        fractions = [0.0] + [0.0] * 11 + [1.0]
        assert tlp_from_fractions(fractions) == pytest.approx(12.0)

    def test_fully_idle_returns_zero(self):
        assert tlp_from_fractions([1.0, 0.0]) == 0.0

    def test_empty_fraction_list(self):
        assert tlp_from_fractions([]) == 0.0

    def test_unnormalized_fractions_are_normalized(self):
        assert tlp_from_fractions([20, 40, 40]) == pytest.approx(1.5)


class TestMeasureTlp:
    def test_one_thread_half_time(self):
        table = table_from_intervals([(0, 0, 50)])
        result = measure_tlp(table, n_logical=4)
        assert result.tlp == pytest.approx(1.0)
        assert result.idle_fraction == pytest.approx(0.5)
        assert result.max_instantaneous == 1

    def test_two_threads_overlapping(self):
        table = table_from_intervals([(0, 0, 100), (1, 0, 100)])
        result = measure_tlp(table, n_logical=4)
        assert result.tlp == pytest.approx(2.0)
        assert result.fraction_at_level(2) == pytest.approx(1.0)

    def test_mixed_serial_and_parallel(self):
        # 2 CPUs busy 0..50, 1 CPU busy 50..100: TLP = (.5*2 + .5*1)/1 = 1.5
        table = table_from_intervals([(0, 0, 50), (1, 0, 50), (0, 50, 100)])
        result = measure_tlp(table, n_logical=4)
        assert result.tlp == pytest.approx(1.5)

    def test_process_filtering(self):
        rows = [
            ("app.exe", 8, 8000, "t", 0, 0, 0, 100),
            ("other.exe", 9, 9000, "t", 1, 0, 0, 100),
        ]
        table = CpuUsagePreciseTable(rows, 0, 100)
        app_only = measure_tlp(table, 4, processes={"app.exe"})
        both = measure_tlp(table, 4)
        assert app_only.tlp == pytest.approx(1.0)
        assert both.tlp == pytest.approx(2.0)

    def test_window_restriction(self):
        table = table_from_intervals([(0, 0, 50)], stop=100)
        early = measure_tlp(table, 4, window=(0, 50))
        late = measure_tlp(table, 4, window=(50, 100))
        assert early.tlp == pytest.approx(1.0)
        assert early.idle_fraction == pytest.approx(0.0)
        assert late.tlp == 0.0

    def test_fraction_levels_cover_full_range(self):
        table = table_from_intervals([(0, 0, 100)])
        result = measure_tlp(table, n_logical=12)
        assert len(result.fractions) == 13
        assert sum(result.fractions) == pytest.approx(1.0)

    def test_fraction_at_out_of_range_level(self):
        table = table_from_intervals([(0, 0, 100)])
        result = measure_tlp(table, n_logical=2)
        assert result.fraction_at_level(99) == 0.0

    def test_n_logical_validation(self):
        table = table_from_intervals([(0, 0, 100)])
        with pytest.raises(ValueError):
            measure_tlp(table, 0)

    def test_empty_window_rejected(self):
        table = table_from_intervals([(0, 0, 100)])
        with pytest.raises(ValueError):
            measure_tlp(table, 4, window=(50, 50))

    def test_tlp_never_exceeds_logical_cpus(self):
        intervals = [(cpu, 0, 100) for cpu in range(12)]
        result = measure_tlp(table_from_intervals(intervals), n_logical=12)
        assert result.tlp == pytest.approx(12.0)
        assert result.max_instantaneous == 12
