"""Streaming metrics engine: exact equivalence with the post-hoc path."""

import gc

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import create_app
from repro.apps.base import AppRuntime
from repro.automation import AUTOIT, InputDriver
from repro.gpu import GpuDevice
from repro.hardware import paper_machine
from repro.harness.runner import run_app_once
from repro.metrics import OnlineMetricsEngine, OnlineSweep, fused_sweep
from repro.os import Kernel
from repro.sim import SECOND, Environment
from repro.trace import ContextSwitchRecord, TraceSession

intervals_strategy = st.lists(
    st.tuples(st.integers(0, 100), st.integers(0, 50)),
    max_size=25,
)


def _edges(intervals):
    """Time-ordered (time, kind, key) edge stream of the intervals."""
    events = []
    for key, (start, duration) in enumerate(intervals):
        events.append((start, "open", key))
        events.append((start + duration, "close", key))
    events.sort(key=lambda e: e[0])
    return events


class TestOnlineSweepProperty:
    @given(intervals_strategy, st.integers(0, 60), st.integers(0, 80))
    @settings(max_examples=200)
    def test_matches_fused_sweep_of_closed_intervals(
            self, intervals, w0, length):
        """Feeding the live edge stream reproduces fused_sweep over
        exactly the intervals a post-hoc trace would have recorded:
        those *closing* inside the recording window.  Open-at-stop
        intervals are dropped; straddling ones clamp to the window."""
        stop = w0 + length
        sweep = OnlineSweep()
        begun = False
        for time, kind, key in _edges(intervals):
            if not begun and time >= w0:
                sweep.begin(w0)
                begun = True
            if time > stop:
                break
            if kind == "open":
                sweep.open(key, time)
            else:
                sweep.close(key, time)
        if not begun:
            sweep.begin(w0)
        got = sweep.result(stop)

        recorded = [(s, s + d) for s, d in intervals if w0 <= s + d <= stop]
        want = fused_sweep(recorded, w0, stop)
        assert got.profile == want.profile
        assert got.union_length == want.union_length
        assert got.max_concurrency == want.max_concurrency

    @given(intervals_strategy, st.integers(0, 40), st.integers(0, 40))
    @settings(max_examples=100)
    def test_second_window_counts_straddlers(self, intervals, gap, length):
        """An interval left open across one window is measured by the
        next window from that window's start — like a record whose
        switch-in predates the second trace's start."""
        first_stop = 30
        w1 = first_stop + gap
        stop = w1 + length
        sweep = OnlineSweep()
        sweep.begin(0)
        edges = _edges(intervals)
        fed = []
        for time, kind, key in edges:
            if time > first_stop:
                break
            fed.append((time, kind, key))
            if kind == "open":
                sweep.open(key, time)
            else:
                sweep.close(key, time)
        sweep.result(first_stop)

        sweep.begin(w1)
        for time, kind, key in edges[len(fed):]:
            if time > stop:
                break
            if kind == "open":
                sweep.open(key, time)
            else:
                sweep.close(key, time)
        got = sweep.result(stop)

        recorded = [(s, s + d) for s, d in intervals
                    if w1 <= s + d <= stop]
        want = fused_sweep(recorded, w1, stop)
        assert got.profile == want.profile
        assert got.union_length == want.union_length
        assert got.max_concurrency == want.max_concurrency


def _run_pair(app_name, duration_us, seed):
    post = run_app_once(create_app(app_name), duration_us=duration_us,
                        seed=seed)
    live = run_app_once(create_app(app_name), duration_us=duration_us,
                        seed=seed, streaming=True)
    return post, live


class TestStreamingRunEquivalence:
    def test_bit_identical_metrics(self):
        for app_name in ("excel", "photoshop", "space-pirate"):
            post, live = _run_pair(app_name, 2 * SECOND, seed=11)
            assert live.tlp.tlp == post.tlp.tlp
            assert live.tlp.fractions == post.tlp.fractions
            assert live.tlp.max_instantaneous == post.tlp.max_instantaneous
            assert live.tlp.window_us == post.tlp.window_us
            assert (live.gpu_util.utilization_pct
                    == post.gpu_util.utilization_pct)
            assert (live.gpu_util.max_concurrent_packets
                    == post.gpu_util.max_concurrent_packets)
            assert live.gpu_util.capped == post.gpu_util.capped
            assert live.frame_stats == post.frame_stats

    def test_union_method_also_identical(self):
        post = run_app_once(create_app("premiere"), duration_us=2 * SECOND,
                            seed=3, gpu_method="union")
        live = run_app_once(create_app("premiere"), duration_us=2 * SECOND,
                            seed=3, gpu_method="union", streaming=True)
        assert (live.gpu_util.utilization_pct
                == post.gpu_util.utilization_pct)

    def test_streaming_rejects_keep_trace(self):
        import pytest

        with pytest.raises(ValueError):
            run_app_once(create_app("excel"), duration_us=SECOND,
                         streaming=True, keep_trace=True)


def _streaming_engine_run(duration_us):
    machine = paper_machine()
    env = Environment()
    session = TraceSession(env, machine_name=machine.cpu.name,
                           retain_records=False)
    kernel = Kernel(env, machine, session=session, seed=3)
    gpu = GpuDevice(env, machine.gpu, session)
    driver = InputDriver(kernel, mode=AUTOIT, seed=10)
    runtime = AppRuntime(kernel, gpu, driver, duration_us, seed=3)
    engine = OnlineMetricsEngine(session, machine.logical_cpus,
                                 processes=runtime.process_names)
    session.start()
    create_app("excel").build(runtime)
    env.run(until=runtime.end_time)
    session.stop()
    return engine


class TestStreamingMemory:
    def test_edge_queue_flat_in_trace_length(self):
        """A 10x longer run must not grow the retained edge queue:
        memory is bounded by open-interval depth, not trace length."""
        short = _streaming_engine_run(SECOND)
        long = _streaming_engine_run(10 * SECOND)
        assert short.tlp_result().tlp > 0
        assert long.tlp_result().tlp > 0
        bound = 4 * (paper_machine().logical_cpus + 5)
        assert short.pending_edges <= bound
        assert long.pending_edges <= bound

    def test_no_context_switch_records_retained(self):
        gc.collect()
        before = sum(1 for obj in gc.get_objects()
                     if isinstance(obj, ContextSwitchRecord))
        run = run_app_once(create_app("excel"), duration_us=2 * SECOND,
                           seed=9, streaming=True)
        assert run.tlp.tlp > 0
        gc.collect()
        after = sum(1 for obj in gc.get_objects()
                    if isinstance(obj, ContextSwitchRecord))
        assert after <= before
