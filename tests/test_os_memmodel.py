"""Unit tests for the memory/cache contention counters (VTune substitute)."""

import pytest

from repro.os import MemoryModel, WorkClass
from repro.sim import MS


class TestMemoryModel:
    def test_unseen_process_has_empty_counters(self):
        counters = MemoryModel().counters("nobody.exe")
        assert counters.work_us == 0
        assert counters.l1_stall_pct == 0.0
        assert counters.llc_misses_per_ms == 0.0

    def test_l1_stall_alone_matches_paper_baseline(self):
        model = MemoryModel()
        model.record_slice("a.exe", WorkClass.FU_BOUND, 100 * MS,
                           sibling_busy=False, sibling_same_process=False)
        assert model.counters("a.exe").l1_stall_pct == pytest.approx(5.3)

    def test_l1_stall_contended_matches_paper(self):
        model = MemoryModel()
        model.record_slice("a.exe", WorkClass.FU_BOUND, 100 * MS,
                           sibling_busy=True, sibling_same_process=True)
        assert model.counters("a.exe").l1_stall_pct == pytest.approx(10.7)

    def test_shared_sibling_reduces_llc_misses(self):
        alone, shared = MemoryModel(), MemoryModel()
        alone.record_slice("a.exe", WorkClass.FU_BOUND, 50 * MS,
                           sibling_busy=False, sibling_same_process=False)
        shared.record_slice("a.exe", WorkClass.FU_BOUND, 50 * MS,
                            sibling_busy=True, sibling_same_process=True)
        assert (shared.counters("a.exe").llc_misses
                < alone.counters("a.exe").llc_misses)

    def test_foreign_sibling_does_not_reduce_misses(self):
        alone, foreign = MemoryModel(), MemoryModel()
        alone.record_slice("a.exe", WorkClass.BALANCED, 50 * MS,
                           sibling_busy=False, sibling_same_process=False)
        foreign.record_slice("a.exe", WorkClass.BALANCED, 50 * MS,
                             sibling_busy=True, sibling_same_process=False)
        assert (foreign.counters("a.exe").llc_misses
                == pytest.approx(alone.counters("a.exe").llc_misses))

    def test_memory_bound_work_misses_more_than_ui(self):
        model = MemoryModel()
        model.record_slice("mem.exe", WorkClass.MEMORY_BOUND, 10 * MS,
                           sibling_busy=False, sibling_same_process=False)
        model.record_slice("ui.exe", WorkClass.UI, 10 * MS,
                           sibling_busy=False, sibling_same_process=False)
        assert (model.counters("mem.exe").llc_misses
                > 5 * model.counters("ui.exe").llc_misses)

    def test_mem_wait_scales_with_misses(self):
        model = MemoryModel()
        model.record_slice("a.exe", WorkClass.MEMORY_BOUND, 10 * MS,
                           sibling_busy=False, sibling_same_process=False)
        counters = model.counters("a.exe")
        assert counters.mem_wait_us > 0
        assert counters.mem_wait_us == pytest.approx(
            counters.llc_misses * 0.09)

    def test_counters_accumulate_across_slices(self):
        model = MemoryModel()
        for _ in range(4):
            model.record_slice("a.exe", WorkClass.BALANCED, 5 * MS,
                               sibling_busy=False, sibling_same_process=False)
        assert model.counters("a.exe").work_us == 20 * MS

    def test_contended_time_tracked(self):
        model = MemoryModel()
        model.record_slice("a.exe", WorkClass.BALANCED, 5 * MS, True, True)
        model.record_slice("a.exe", WorkClass.BALANCED, 5 * MS, False, False)
        assert model.counters("a.exe").contended_us == 5 * MS

    def test_by_class_breakdown(self):
        model = MemoryModel()
        model.record_slice("a.exe", WorkClass.UI, 3 * MS, False, False)
        model.record_slice("a.exe", WorkClass.FU_BOUND, 7 * MS, False, False)
        by_class = model.counters("a.exe").by_class
        assert by_class[WorkClass.UI] == 3 * MS
        assert by_class[WorkClass.FU_BOUND] == 7 * MS

    def test_process_names_sorted(self):
        model = MemoryModel()
        model.record_slice("b.exe", WorkClass.UI, MS, False, False)
        model.record_slice("a.exe", WorkClass.UI, MS, False, False)
        assert model.process_names() == ["a.exe", "b.exe"]
