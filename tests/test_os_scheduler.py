"""Unit tests for the OS layer: topology, scheduling, SMT, tracing."""

import pytest

from repro.hardware import GTX_1080_TI, MachineSpec, paper_machine
from repro.hardware.specs import CpuSpec
from repro.os import Kernel, ThreadState, WorkClass, boot, build_topology
from repro.sim import MS, SECOND, Environment
from repro.trace import CpuUsagePreciseTable, TraceSession


def make_kernel(machine=None, session=None, turbo=False):
    env = Environment()
    machine = machine or paper_machine()
    session = session or TraceSession(env)
    kernel = Kernel(env, machine, session=session, turbo=turbo)
    return env, kernel, session


def cpu_burner(duration, work_class=WorkClass.BALANCED):
    def body(ctx):
        yield ctx.cpu(duration, work_class)

    return body


class TestTopology:
    def test_full_machine_exposes_12_lcpus(self):
        lcpus = build_topology(paper_machine())
        assert len(lcpus) == 12
        assert {l.core for l in lcpus} == set(range(6))

    def test_core_major_enumeration_pairs_siblings(self):
        lcpus = build_topology(paper_machine())
        assert (lcpus[0].core, lcpus[0].way) == (0, 0)
        assert (lcpus[1].core, lcpus[1].way) == (0, 1)
        assert (lcpus[2].core, lcpus[2].way) == (1, 0)

    def test_restricting_to_4_lcpus_gives_2_full_cores(self):
        lcpus = build_topology(paper_machine().with_logical_cpus(4))
        assert {l.core for l in lcpus} == {0, 1}

    def test_smt_off_gives_one_way_per_core(self):
        lcpus = build_topology(paper_machine().with_smt(False))
        assert len(lcpus) == 6
        assert all(l.way == 0 for l in lcpus)


class TestProcessesAndThreads:
    def test_pids_are_unique_and_increasing(self):
        _env, kernel, _ = make_kernel()
        pids = [kernel.spawn_process(f"p{i}").pid for i in range(5)]
        assert len(set(pids)) == 5
        assert pids == sorted(pids)

    def test_thread_lifecycle(self):
        env, kernel, _ = make_kernel()
        process = kernel.spawn_process("app.exe")
        thread = process.spawn_thread(cpu_burner(10 * MS), name="t")
        assert thread.is_alive or thread.state is ThreadState.NEW
        env.run()
        assert thread.state is ThreadState.TERMINATED

    def test_thread_join(self):
        env, kernel, _ = make_kernel()
        process = kernel.spawn_process("app.exe")

        def child(ctx):
            yield ctx.cpu(5 * MS)
            return "result"

        def parent(ctx):
            thread = process.spawn_thread(child, name="child")
            value = yield ctx.wait(thread.join())
            return value

        parent_thread = process.spawn_thread(parent, name="parent")
        env.run()
        assert parent_thread.joined.value == "result"

    def test_process_exited_event(self):
        env, kernel, _ = make_kernel()
        process = kernel.spawn_process("app.exe")
        process.spawn_thread(cpu_burner(5 * MS))
        process.spawn_thread(cpu_burner(15 * MS))
        env.run()
        assert process.exited.triggered

    def test_double_start_rejected(self):
        _env, kernel, _ = make_kernel()
        process = kernel.spawn_process("app.exe")
        thread = process.spawn_thread(cpu_burner(MS))
        with pytest.raises(RuntimeError):
            thread.start()

    def test_invalid_yield_from_body_raises(self):
        env, kernel, _ = make_kernel()
        process = kernel.spawn_process("app.exe")

        def bad(ctx):
            yield 42

        process.spawn_thread(bad)
        with pytest.raises(TypeError):
            env.run()


class TestSchedulingBehaviour:
    def test_single_burst_runs_for_nominal_time_without_contention(self):
        env, kernel, session = make_kernel()
        session.start()
        process = kernel.spawn_process("app.exe")
        process.spawn_thread(cpu_burner(40 * MS))
        env.run()
        trace = session.stop()
        busy = sum(r.duration for r in trace.cswitches
                   if r.process == "app.exe")
        assert busy == pytest.approx(40 * MS, rel=0.02)

    def test_threads_spread_across_physical_cores_first(self):
        env, kernel, session = make_kernel()
        session.start()
        process = kernel.spawn_process("app.exe")
        for _ in range(6):
            process.spawn_thread(cpu_burner(10 * MS))
        env.run()
        trace = session.stop()
        lcpus = build_topology(kernel.machine)
        cores_used = {lcpus[r.cpu].core for r in trace.cswitches
                      if r.process == "app.exe"}
        assert len(cores_used) == 6  # one thread per physical core

    def test_oversubscription_time_multiplexes(self):
        machine = paper_machine().with_logical_cpus(2)
        env, kernel, session = make_kernel(machine)
        session.start()
        process = kernel.spawn_process("app.exe")
        for _ in range(4):
            process.spawn_thread(cpu_burner(30 * MS, WorkClass.UI))
        env.run()
        trace = session.stop()
        table = CpuUsagePreciseTable.from_trace(trace)
        # Only 2 CPUs -> total wall time is at least 2x one burst.
        assert trace.duration >= 55 * MS
        cpus = {row[4] for row in table.rows if row[0] == "app.exe"}
        assert cpus == {0, 1}

    def test_preempted_threads_record_wait_time(self):
        machine = paper_machine().with_logical_cpus(2)
        env, kernel, session = make_kernel(machine)
        session.start()
        process = kernel.spawn_process("app.exe")
        for _ in range(4):
            process.spawn_thread(cpu_burner(40 * MS, WorkClass.UI))
        env.run()
        trace = session.stop()
        waits = [r.wait_time for r in trace.cswitches if r.process == "app.exe"]
        assert any(w > 0 for w in waits)

    def test_sleep_occupies_no_cpu(self):
        env, kernel, session = make_kernel()
        session.start()
        process = kernel.spawn_process("app.exe")

        def sleeper(ctx):
            yield ctx.sleep(100 * MS)
            yield ctx.cpu(MS)

        process.spawn_thread(sleeper)
        env.run()
        trace = session.stop()
        busy = sum(r.duration for r in trace.cswitches
                   if r.process == "app.exe")
        assert busy < 5 * MS

    def test_retired_work_accounts_nominal_time(self):
        env, kernel, _session = make_kernel()
        process = kernel.spawn_process("app.exe")
        process.spawn_thread(cpu_burner(25 * MS))
        env.run()
        assert kernel.scheduler.retired_work["app.exe"] == pytest.approx(
            25 * MS, rel=0.01)


class TestSmtContention:
    def _throughput(self, machine, n_threads, work_class):
        """Nominal work retired per wall µs with n_threads spinning."""
        env, kernel, _ = make_kernel(machine)
        process = kernel.spawn_process("spin.exe")

        def spinner(ctx):
            while ctx.now < SECOND:
                yield ctx.cpu(10 * MS, work_class)

        for _ in range(n_threads):
            process.spawn_thread(spinner)
        env.run(until=SECOND)
        return kernel.scheduler.retired_work["spin.exe"] / SECOND

    def test_fu_bound_smt_pair_is_slower_than_lone_thread_per_core(self):
        machine = MachineSpec(cpu=paper_machine().cpu, gpu=GTX_1080_TI,
                              active_logical_cpus=2)
        lone = self._throughput(machine, 1, WorkClass.FU_BOUND)
        pair = self._throughput(machine, 2, WorkClass.FU_BOUND)
        assert pair < lone  # combined throughput drops below 1.0 (Fig. 8)

    def test_memory_bound_smt_pair_gains(self):
        machine = MachineSpec(cpu=paper_machine().cpu, gpu=GTX_1080_TI,
                              active_logical_cpus=2)
        lone = self._throughput(machine, 1, WorkClass.MEMORY_BOUND)
        pair = self._throughput(machine, 2, WorkClass.MEMORY_BOUND)
        assert pair > lone * 1.2

    def test_smt_off_runs_at_full_speed(self):
        machine = paper_machine().with_smt(False)
        lone = self._throughput(machine, 1, WorkClass.FU_BOUND)
        six = self._throughput(machine, 6, WorkClass.FU_BOUND)
        assert six == pytest.approx(6 * lone, rel=0.05)


class TestTurbo:
    def test_turbo_speeds_up_lightly_loaded_chip(self):
        def retire(turbo):
            env = Environment()
            kernel = Kernel(env, paper_machine(), turbo=turbo)
            process = kernel.spawn_process("app.exe")

            def spinner(ctx):
                while ctx.now < SECOND:
                    yield ctx.cpu(10 * MS, WorkClass.BALANCED)

            process.spawn_thread(spinner)
            env.run(until=SECOND)
            return kernel.scheduler.retired_work["app.exe"]

        assert retire(True) > retire(False) * 1.15

    def test_clock_factor_declines_with_load(self):
        env, kernel, _ = make_kernel(turbo=True)
        scheduler = kernel.scheduler
        assert scheduler._clock_factor() == pytest.approx(4.70 / 3.70)


class TestBackgroundServices:
    def test_services_appear_in_trace_but_are_light(self):
        env = Environment()
        session = TraceSession(env)
        kernel = boot(env, paper_machine(), session=session, seed=3)
        session.start()
        env.run(until=3 * SECOND)
        trace = session.stop()
        names = set(trace.processes)
        assert {"System", "svchost.exe", "dwm.exe"} <= names
        busy = sum(r.duration for r in trace.cswitches)
        assert busy < 0.1 * trace.duration * kernel.logical_cpus


class TestWarmCpuAffinity:
    def test_thread_returns_to_its_last_cpu(self):
        env, kernel, session = make_kernel()
        session.start()
        process = kernel.spawn_process("app.exe")

        def bursty(ctx):
            for _ in range(8):
                yield ctx.cpu(5 * MS, WorkClass.UI)
                yield ctx.sleep(5 * MS)

        process.spawn_thread(bursty)
        env.run()
        trace = session.stop()
        cpus = {r.cpu for r in trace.cswitches if r.process == "app.exe"}
        assert len(cpus) == 1  # warm affinity keeps it in place

    def test_warm_cpu_does_not_beat_idle_physical_core(self):
        # Thread A warms LCPU 0; while A runs again, thread B occupies
        # LCPU 0's sibling would be wrong — B must go to a fresh core.
        env, kernel, session = make_kernel()
        session.start()
        process = kernel.spawn_process("app.exe")

        def worker(ctx):
            for _ in range(4):
                yield ctx.cpu(10 * MS, WorkClass.UI)
                yield ctx.sleep(1 * MS)

        process.spawn_thread(worker)
        process.spawn_thread(worker)
        env.run()
        trace = session.stop()
        lcpus = build_topology(kernel.machine)
        cores = {lcpus[r.cpu].core for r in trace.cswitches
                 if r.process == "app.exe"}
        assert len(cores) == 2  # one physical core per thread
