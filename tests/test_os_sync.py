"""Unit tests for thread synchronization primitives."""

import pytest

from repro.hardware import paper_machine
from repro.os import Barrier, CountdownLatch, Kernel, Lock, MessageQueue, Semaphore
from repro.sim import MS, Environment


@pytest.fixture
def kernel():
    return Kernel(Environment(), paper_machine(), turbo=False)


class TestLock:
    def test_uncontended_acquire_is_immediate(self, kernel):
        lock = Lock(kernel)
        grant = lock.acquire("a")
        assert grant.triggered
        assert lock.locked

    def test_contended_acquire_waits_for_release(self, kernel):
        lock = Lock(kernel)
        lock.acquire("a")
        second = lock.acquire("b")
        assert not second.triggered
        lock.release("a")
        assert second.triggered
        assert lock.locked  # now held by "b"

    def test_release_unheld_raises(self, kernel):
        with pytest.raises(RuntimeError,
                           match=r"release of unheld lock 'lock-1'"):
            Lock(kernel).release()

    def test_release_by_non_owner_raises(self, kernel):
        lock = Lock(kernel, name="render-mutex")
        lock.acquire("a")
        with pytest.raises(
                RuntimeError,
                match=r"lock 'render-mutex' released by non-owner 'b'; "
                      r"currently held by 'a'"):
            lock.release("b")
        assert lock.owner == "a"  # failed release leaves the lock held

    def test_owner_property(self, kernel):
        lock = Lock(kernel)
        assert lock.owner is None
        lock.acquire("a")
        assert lock.owner == "a"
        lock.release("a")
        assert lock.owner is None

    def test_repr_names_state_and_waiters(self, kernel):
        lock = Lock(kernel, name="demux")
        assert repr(lock) == "<Lock 'demux' free, 0 waiting>"
        lock.acquire("a")
        lock.acquire("b")
        assert repr(lock) == "<Lock 'demux' held by 'a', 1 waiting>"

    def test_error_messages_use_thread_names(self, kernel):
        class Thread:
            name = "ui-thread"

        lock = Lock(kernel)
        lock.acquire(Thread())
        with pytest.raises(RuntimeError, match="held by ui-thread"):
            lock.release("someone-else")

    def test_fifo_handoff(self, kernel):
        lock = Lock(kernel)
        lock.acquire("a")
        b = lock.acquire("b")
        c = lock.acquire("c")
        lock.release("a")
        assert b.triggered and not c.triggered

    def test_critical_sections_are_exclusive(self, kernel):
        env = kernel.env
        lock = Lock(kernel)
        process = kernel.spawn_process("app.exe")
        spans = []

        def body(ctx):
            yield ctx.wait(lock.acquire(ctx.thread))
            start = ctx.now
            yield ctx.cpu(10 * MS)
            spans.append((start, ctx.now))
            lock.release(ctx.thread)

        for _ in range(3):
            process.spawn_thread(body)
        env.run()
        spans.sort()
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert start >= stop


class TestSemaphore:
    def test_initial_value_grants(self, kernel):
        semaphore = Semaphore(kernel, value=2)
        assert semaphore.acquire().triggered
        assert semaphore.acquire().triggered
        assert not semaphore.acquire().triggered

    def test_release_wakes_waiter_before_counting(self, kernel):
        semaphore = Semaphore(kernel, value=0)
        waiter = semaphore.acquire()
        semaphore.release()
        assert waiter.triggered
        assert semaphore.value == 0

    def test_release_count(self, kernel):
        semaphore = Semaphore(kernel, value=0)
        waiters = [semaphore.acquire() for _ in range(3)]
        semaphore.release(count=2)
        assert [w.triggered for w in waiters] == [True, True, False]

    def test_negative_value_rejected(self, kernel):
        with pytest.raises(ValueError):
            Semaphore(kernel, value=-1)


class TestBarrier:
    def test_fires_when_all_arrive(self, kernel):
        barrier = Barrier(kernel, parties=3)
        gates = [barrier.wait() for _ in range(3)]
        assert all(g.triggered for g in gates)
        assert gates[0] is gates[1] is gates[2]

    def test_not_before_all_arrive(self, kernel):
        barrier = Barrier(kernel, parties=2)
        gate = barrier.wait()
        assert not gate.triggered

    def test_reusable_across_generations(self, kernel):
        barrier = Barrier(kernel, parties=2)
        first = [barrier.wait(), barrier.wait()]
        second = [barrier.wait(), barrier.wait()]
        assert all(g.triggered for g in first + second)
        assert first[0] is not second[0]

    def test_parties_validation(self, kernel):
        with pytest.raises(ValueError):
            Barrier(kernel, parties=0)

    def test_threads_synchronize_at_barrier(self, kernel):
        env = kernel.env
        barrier = Barrier(kernel, parties=3)
        process = kernel.spawn_process("app.exe")
        release_times = []

        def body(delay):
            def run(ctx):
                yield ctx.sleep(delay)
                yield ctx.wait(barrier.wait())
                release_times.append(ctx.now)

            return run

        for delay in (5 * MS, 10 * MS, 20 * MS):
            process.spawn_thread(body(delay))
        env.run()
        assert release_times == [20 * MS] * 3


class TestMessageQueue:
    def test_put_get_through_threads(self, kernel):
        env = kernel.env
        queue = MessageQueue(kernel, capacity=2)
        process = kernel.spawn_process("app.exe")
        received = []

        def producer(ctx):
            for item in range(5):
                yield ctx.wait(queue.put(item))
                yield ctx.cpu(MS)

        def consumer(ctx):
            for _ in range(5):
                item = yield ctx.wait(queue.get())
                received.append(item)
                yield ctx.cpu(2 * MS)

        process.spawn_thread(producer)
        process.spawn_thread(consumer)
        env.run()
        assert received == [0, 1, 2, 3, 4]

    def test_len(self, kernel):
        queue = MessageQueue(kernel)
        queue.put("x")
        assert len(queue) == 1


class TestNamingAndRegistry:
    def test_auto_names_are_stable_per_kind(self, kernel):
        assert Lock(kernel).name == "lock-1"
        assert Lock(kernel).name == "lock-2"
        assert Semaphore(kernel).name == "semaphore-1"
        assert Barrier(kernel, parties=2).name == "barrier-1"
        assert MessageQueue(kernel).name == "queue-1"
        assert CountdownLatch(kernel, count=1).name == "latch-1"

    def test_explicit_name_wins(self, kernel):
        assert Lock(kernel, name="frame-lock").name == "frame-lock"

    def test_kernel_inventory_records_primitives(self, kernel):
        lock = Lock(kernel)
        queue = MessageQueue(kernel)
        assert lock in kernel.sync_primitives
        assert queue in kernel.sync_primitives

    def test_reprs_name_the_primitive(self, kernel):
        assert "'semaphore-1' value=2" in repr(Semaphore(kernel, value=2))
        assert "'barrier-1' 0/3" in repr(Barrier(kernel, parties=3))
        assert "'queue-1' len=0" in repr(MessageQueue(kernel))
        assert "remaining=2" in repr(CountdownLatch(kernel, count=2))

    def test_primitives_work_without_registry(self):
        """Bare kernel doubles (env only) still get usable names."""
        class Double:
            def __init__(self, env):
                self.env = env

        from repro.sim import Environment

        lock = Lock(Double(Environment()))
        assert lock.name.startswith("lock@")
        assert lock.acquire("a").triggered


class TestCountdownLatch:
    def test_fires_after_count(self, kernel):
        latch = CountdownLatch(kernel, count=2)
        latch.count_down()
        assert not latch.done.triggered
        latch.count_down()
        assert latch.done.triggered

    def test_extra_countdowns_ignored(self, kernel):
        latch = CountdownLatch(kernel, count=1)
        latch.count_down()
        latch.count_down()  # no error
        assert latch.done.triggered

    def test_count_validation(self, kernel):
        with pytest.raises(ValueError):
            CountdownLatch(kernel, count=0)
