"""The paper's §VIII conclusions, asserted end-to-end.

Each test reproduces one sentence of the conclusion section from live
simulated measurements (2018 suite on the paper machine; 2010-era
models on Blake et al.'s machine where the claim spans eras).
"""

import pytest

from repro.apps import REGISTRY, create_app
from repro.apps.era2010 import ERA2010_REGISTRY
from repro.harness import run_app_once
from repro.hardware import machine_2010
from repro.sim import SECOND

DURATION = 30 * SECOND

_cache = {}


def run_2018(name):
    if name not in _cache:
        _cache[name] = run_app_once(create_app(name), duration_us=DURATION,
                                    seed=9)
    return _cache[name]


def run_2010(name):
    key = ("2010", name)
    if key not in _cache:
        _cache[key] = run_app_once(ERA2010_REGISTRY[name](),
                                   machine=machine_2010(),
                                   duration_us=DURATION, seed=9)
    return _cache[key]


class TestConclusions:
    def test_vr_tlp_is_about_twice_traditional_3d_gaming(self):
        # "The average TLP of VR gaming is twice that of traditional
        # 3D gaming" — measured across the two simulated eras.
        vr = [run_2018(name).tlp.tlp for name in (
            "arizona-sunshine", "fallout4", "raw-data", "serious-sam",
            "space-pirate", "project-cars-2")]
        gaming_3d = [run_2010(name).tlp.tlp for name in (
            "crysis", "cod4", "bioshock")]
        ratio = (sum(vr) / len(vr)) / (sum(gaming_3d) / len(gaming_3d))
        assert ratio == pytest.approx(2.0, abs=0.5)

    def test_cpu_mining_tlp_beats_80_percent_of_suite(self):
        # "cryptocurrency miners involving CPU mining have a TLP higher
        # than that of over 80% of the benchmarks."
        all_tlps = sorted(run_2018(name).tlp.tlp for name in REGISTRY)
        cutoff = all_tlps[int(len(all_tlps) * 0.8)]
        for miner in ("bitcoin-miner", "easyminer"):
            assert run_2018(miner).tlp.tlp > cutoff

    def test_handbrake_and_photoshop_increased_since_2010(self):
        # "Noticeable increases were seen in many applications,
        # including those reputed for effective utilization of
        # processor cores like HandBrake and Photoshop."
        assert run_2018("handbrake").tlp.tlp > \
            run_2010("handbrake-09").tlp.tlp + 2.0
        assert run_2018("photoshop").tlp.tlp > \
            run_2010("photoshop-cs4").tlp.tlp + 2.0

    def test_gpu_utilization_lower_than_2010_for_legacy_lineages(self):
        # "overall GPU utilization was lower than that observed in
        # 2010" — pairwise across the simulated eras.
        pairs = (
            ("quicktime", "quicktime-76"),
            ("wmp", "wmp-2010"),
            ("powerdirector", "powerdirector-v7"),
            ("handbrake", "handbrake-09"),
            ("firefox", "firefox-35"),
            ("photoshop", "photoshop-cs4"),
            ("maya", "maya-2010"),
        )
        for new, old in pairs:
            assert (run_2018(new).gpu_util.utilization_pct
                    < run_2010(old).gpu_util.utilization_pct), (new, old)

    def test_emerging_workloads_exploit_the_gpu_fully(self):
        # "emerging workloads, e.g. VR games and cryptocurrency miners,
        # exhibited great potential, as they fully exploited the
        # computation power of the GPU."
        for name in ("phoenixminer", "wineth", "bitcoin-miner",
                     "easyminer"):
            assert run_2018(name).gpu_util.utilization_pct > 90
        vr_utils = [run_2018(name).gpu_util.utilization_pct for name in (
            "arizona-sunshine", "fallout4", "raw-data", "serious-sam",
            "space-pirate", "project-cars-2")]
        assert sum(vr_utils) / len(vr_utils) > 60

    def test_browsers_moved_to_multiprocess_models(self):
        # "web browsers have shifted from single-process models to
        # multi-process models".
        firefox_2010 = run_2010("firefox-35")
        chrome_2018 = run_2018("chrome")
        assert len(firefox_2010.process_names) == 1
        assert len(chrome_2018.process_names) >= 5

    def test_scope_for_optimization_remains(self):
        # "there is still sufficient scope for software to further
        # improve hardware utilization": most apps leave most of the
        # machine idle-or-serial (TLP < 4 on 12 logical CPUs).
        below_four = sum(1 for name in REGISTRY
                         if run_2018(name).tlp.tlp < 4.0)
        assert below_four >= 20

    def test_gpu_underutilized_for_most_applications(self):
        # Abstract: "The GPU is over-provisioned for most applications".
        below_20 = sum(1 for name in REGISTRY
                       if run_2018(name).gpu_util.utilization_pct < 20)
        assert below_20 >= 18
