"""Tests for result persistence (JSON) and exports (CSV/Markdown)."""

import csv

import pytest

from repro.harness import run_suite
from repro.harness.persistence import (
    app_result_to_dict,
    load_suite,
    save_suite,
)
from repro.reporting.export import suite_to_csv, suite_to_markdown
from repro.sim import SECOND


@pytest.fixture(scope="module")
def suite():
    return run_suite(names=("excel", "handbrake", "phoenixminer"),
                     duration_us=12 * SECOND, iterations=2)


class TestPersistence:
    def test_round_trip_preserves_summaries(self, suite, tmp_path):
        path = tmp_path / "suite.json"
        save_suite(suite, path, metadata={"duration_s": 12})
        loaded = load_suite(path)
        for name in suite.results:
            original = suite.results[name]
            restored = loaded.results[name]
            assert restored.tlp.mean == pytest.approx(original.tlp.mean)
            assert restored.tlp.std == pytest.approx(original.tlp.std)
            assert restored.gpu_util.mean == pytest.approx(
                original.gpu_util.mean)
            assert restored.fractions == pytest.approx(original.fractions)
            assert restored.max_instantaneous == original.max_instantaneous
            assert restored.gpu_capped == original.gpu_capped

    def test_loaded_suite_supports_aggregations(self, suite, tmp_path):
        path = tmp_path / "suite.json"
        save_suite(suite, path)
        loaded = load_suite(path)
        assert loaded.overall_average_tlp() == pytest.approx(
            suite.overall_average_tlp())
        assert set(loaded.apps_with_tlp_above(4.0)) == set(
            suite.apps_with_tlp_above(4.0))

    def test_iteration_values_stored(self, suite):
        data = app_result_to_dict(suite.results["excel"])
        assert len(data["iteration_tlp"]) == 2
        assert data["category"] == "Office"

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            load_suite(path)


class TestExports:
    def test_csv_export(self, suite, tmp_path):
        path = tmp_path / "table2.csv"
        suite_to_csv(suite, path)
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 3
        by_app = {row["app"]: row for row in rows}
        assert float(by_app["handbrake"]["tlp_paper"]) == 9.4
        assert by_app["phoenixminer"]["gpu_capped"] == "True"

    def test_markdown_export(self, suite):
        text = suite_to_markdown(suite)
        assert text.startswith("| Category |")
        assert "HandBrake" in text
        assert "\\*100.0" in text  # PhoenixMiner's saturated footnote
        assert "| avg TLP |" in text
