"""Tests for CPU thread priorities and GPU priority queues."""

import pytest

from repro.gpu import ENGINE_3D, GpuDevice
from repro.hardware import GTX_1080_TI, paper_machine
from repro.os import Kernel, PRIORITY_HIGH, PRIORITY_NORMAL, WorkClass
from repro.sim import MS, SECOND, Environment
from repro.trace import TraceSession


class TestCpuThreadPriorities:
    def _kernel(self, cores=1):
        env = Environment()
        machine = paper_machine().with_smt(False).with_logical_cpus(cores)
        return env, Kernel(env, machine, turbo=False)

    def test_high_priority_jumps_the_ready_queue(self):
        env, kernel = self._kernel(cores=1)
        process = kernel.spawn_process("app.exe")
        order = []

        def body(tag):
            def run(ctx):
                yield ctx.sleep(MS)  # let all threads queue up
                yield ctx.cpu(10 * MS, WorkClass.UI)
                order.append(tag)

            return run

        process.spawn_thread(body("n1"), priority=PRIORITY_NORMAL)
        process.spawn_thread(body("n2"), priority=PRIORITY_NORMAL)
        process.spawn_thread(body("hi"), priority=PRIORITY_HIGH)
        env.run()
        # The high-priority thread finishes before at least one of the
        # normal threads despite being spawned last.
        assert order.index("hi") < 2

    def test_equal_priority_keeps_fifo(self):
        env, kernel = self._kernel(cores=1)
        process = kernel.spawn_process("app.exe")
        order = []

        def body(tag):
            def run(ctx):
                yield ctx.sleep(MS)
                yield ctx.cpu(5 * MS, WorkClass.UI)
                order.append(tag)

            return run

        for tag in ("a", "b", "c"):
            process.spawn_thread(body(tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_high_priority_waits_lower_under_load(self):
        env, kernel = self._kernel(cores=2)
        process = kernel.spawn_process("app.exe")
        waits = {"hi": [], "lo": []}

        def spinner(bucket, priority_tag):
            def run(ctx):
                while ctx.now < SECOND // 2:
                    before = ctx.now
                    yield ctx.cpu(4 * MS, WorkClass.UI)
                    waits[bucket].append(ctx.now - before - 4 * MS)
                    yield ctx.sleep(2 * MS)

            return run

        for _ in range(6):
            process.spawn_thread(spinner("lo", 0), priority=PRIORITY_NORMAL)
        process.spawn_thread(spinner("hi", 1), priority=PRIORITY_HIGH)
        env.run(until=SECOND // 2)
        mean_hi = sum(waits["hi"]) / len(waits["hi"])
        mean_lo = sum(waits["lo"]) / len(waits["lo"])
        assert mean_hi < mean_lo


class TestGpuPriorityQueues:
    def _device(self):
        env = Environment()
        session = TraceSession(env)
        session.start()
        return env, session, GpuDevice(env, GTX_1080_TI, session)

    class _Proc:
        name, pid = "app.exe", 8

    def test_priority_packet_overtakes_queued_work(self):
        env, session, device = self._device()
        process = self._Proc()

        def submitter():
            # First packet starts executing...
            device.submit(process, ENGINE_3D, "frame", 10 * MS)
            for _ in range(2):
                device.submit(process, ENGINE_3D, "frame", 10 * MS)
            yield env.timeout(2 * MS)  # mid-flight of the first packet
            device.submit(process, ENGINE_3D, "timewarp", 1 * MS,
                          priority=1)

        env.process(submitter())
        env.run()
        trace = session.stop()
        ordered = sorted(trace.gpu_packets, key=lambda p: p.start_execution)
        # The timewarp runs second: it cannot preempt the in-flight
        # packet but beats the remaining queued frames.
        assert ordered[0].packet_type == "frame"
        assert ordered[1].packet_type == "timewarp"

    def test_priority_among_high_packets_is_fifo(self):
        env, session, device = self._device()
        process = self._Proc()

        def submitter():
            device.submit(process, ENGINE_3D, "frame", 5 * MS)
            yield env.timeout(1 * MS)
            device.submit(process, ENGINE_3D, "warp-a", 1 * MS, priority=1)
            device.submit(process, ENGINE_3D, "warp-b", 1 * MS, priority=1)

        env.process(submitter())
        env.run()
        trace = session.stop()
        ordered = [p.packet_type for p in sorted(
            trace.gpu_packets, key=lambda p: p.start_execution)]
        assert ordered == ["frame", "warp-a", "warp-b"]

    def test_queue_depth_visible(self):
        env, _session, device = self._device()
        process = self._Proc()
        for _ in range(4):
            device.submit(process, ENGINE_3D, "frame", MS)
        # Engine hasn't run yet (no env.run) — all four queued.
        assert device.engines[ENGINE_3D].queue_depth == 4


class TestCompositorTimewarp:
    def test_reprojection_emits_timewarp_packets(self):
        from repro.apps.vr_gaming import ProjectCars2
        from repro.harness import run_app_once

        machine = paper_machine().with_logical_cpus(4)
        run = run_app_once(ProjectCars2(headset="vive"), machine=machine,
                           duration_us=10 * SECOND, seed=4,
                           keep_trace=True)
        warps = [p for p in run.trace.gpu_packets
                 if p.packet_type == "timewarp"]
        assert len(warps) == run.outputs["reprojected_frames"]

    def test_no_timewarp_at_full_rate(self):
        from repro.apps.vr_gaming import SpacePirateTrainer
        from repro.harness import run_app_once

        run = run_app_once(SpacePirateTrainer(headset="vive"),
                           duration_us=10 * SECOND, seed=4,
                           keep_trace=True)
        warps = [p for p in run.trace.gpu_packets
                 if p.packet_type == "timewarp"]
        # Nearly no misses on the full machine.
        assert len(warps) < 20
