"""Tests for process termination (kill semantics)."""

import pytest

from repro.hardware import paper_machine
from repro.os import Kernel, ThreadState, WorkClass
from repro.sim import MS, SECOND, Environment
from repro.trace import TraceSession


def make_kernel(cores=12):
    env = Environment()
    machine = paper_machine().with_logical_cpus(cores)
    session = TraceSession(env)
    kernel = Kernel(env, machine, session=session, turbo=False)
    session.start()
    return env, kernel, session


def spinner(ctx):
    while True:
        yield ctx.cpu(10 * MS, WorkClass.UI)


def sleeper(ctx):
    while True:
        yield ctx.sleep(50 * MS)


class TestTerminate:
    def test_terminates_running_threads(self):
        env, kernel, _ = make_kernel()
        process = kernel.spawn_process("victim.exe")
        for _ in range(3):
            process.spawn_thread(spinner)

        def killer():
            yield env.timeout(100 * MS)
            process.terminate()

        env.process(killer())
        env.run(until=SECOND)
        assert all(t.state is ThreadState.TERMINATED
                   for t in process.threads)
        assert process.exited.triggered

    def test_terminates_sleeping_threads(self):
        env, kernel, _ = make_kernel()
        process = kernel.spawn_process("victim.exe")
        process.spawn_thread(sleeper)

        def killer():
            yield env.timeout(30 * MS)
            process.terminate()

        env.process(killer())
        env.run(until=SECOND)
        assert process.exited.triggered

    def test_killed_process_stops_consuming_cpu(self):
        env, kernel, session = make_kernel()
        process = kernel.spawn_process("victim.exe")
        process.spawn_thread(spinner)

        def killer():
            yield env.timeout(100 * MS)
            process.terminate()

        env.process(killer())
        env.run(until=SECOND)
        trace = session.stop()
        last_activity = max(r.switch_out_time for r in trace.cswitches
                            if r.process == "victim.exe")
        assert last_activity <= 110 * MS

    def test_cpus_released_after_kill(self):
        env, kernel, _ = make_kernel(cores=2)
        victim = kernel.spawn_process("victim.exe")
        for _ in range(2):
            victim.spawn_thread(spinner)  # saturate both CPUs
        survivor = kernel.spawn_process("survivor.exe")
        progressed = []

        def patient(ctx):
            yield ctx.cpu(500 * MS, WorkClass.UI)
            progressed.append(ctx.now)

        survivor.spawn_thread(patient)

        def killer():
            yield env.timeout(50 * MS)
            victim.terminate()

        env.process(killer())
        env.run(until=2 * SECOND)
        # The survivor got the CPUs back and finished its work.
        assert progressed

    def test_queued_thread_removed_from_ready_queue(self):
        env, kernel, _ = make_kernel(cores=1)
        hog = kernel.spawn_process("hog.exe")
        hog.spawn_thread(spinner)
        victim = kernel.spawn_process("victim.exe")
        victim.spawn_thread(spinner)  # will mostly sit in ready queue

        def killer():
            yield env.timeout(22 * MS)
            victim.terminate()

        env.process(killer())
        env.run(until=300 * MS)
        assert victim.exited.triggered
        assert kernel.scheduler.ready_count <= 1

    def test_terminate_is_idempotent(self):
        env, kernel, _ = make_kernel()
        process = kernel.spawn_process("victim.exe")
        process.spawn_thread(spinner)

        def killer():
            yield env.timeout(20 * MS)
            process.terminate()
            yield env.timeout(20 * MS)
            process.terminate()  # second kill: no error

        env.process(killer())
        env.run(until=SECOND)
        assert process.exited.triggered

    def test_graceful_bodies_can_catch_the_interrupt(self):
        from repro.sim import Interrupt

        env, kernel, _ = make_kernel()
        process = kernel.spawn_process("victim.exe")
        cleaned = []

        def graceful(ctx):
            try:
                while True:
                    yield ctx.cpu(10 * MS, WorkClass.UI)
            except Interrupt as interrupt:
                cleaned.append(interrupt.cause)

        process.spawn_thread(graceful)

        def killer():
            yield env.timeout(30 * MS)
            process.terminate(cause="shutdown")

        env.process(killer())
        env.run(until=SECOND)
        assert cleaned == ["shutdown"]
