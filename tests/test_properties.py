"""Property-based tests (hypothesis) on kernel and metric invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    concurrency_profile,
    max_concurrency,
    measure_gpu_utilization,
    tlp_from_fractions,
    union_length,
)
from repro.sim import Environment, Store
from repro.trace import GpuUtilizationTable

intervals_strategy = st.lists(
    st.tuples(st.integers(0, 10_000), st.integers(1, 5_000)).map(
        lambda pair: (pair[0], pair[0] + pair[1])),
    max_size=30)


class TestIntervalProperties:
    @given(intervals_strategy)
    def test_profile_partitions_window(self, intervals):
        window = (0, 20_000)
        profile = concurrency_profile(intervals, *window)
        assert sum(profile.values()) == window[1] - window[0]
        assert all(duration >= 0 for duration in profile.values())

    @given(intervals_strategy)
    def test_union_bounded_by_window_and_sum(self, intervals):
        union = union_length(intervals, 0, 20_000)
        total = sum(min(e, 20_000) - max(s, 0)
                    for s, e in intervals if e > 0 and s < 20_000)
        assert 0 <= union <= 20_000
        assert union <= total

    @given(intervals_strategy)
    def test_max_concurrency_bounds(self, intervals):
        peak = max_concurrency(intervals, 0, 20_000)
        live = [i for i in intervals if i[1] > 0 and i[0] < 20_000]
        assert 0 <= peak <= len(live)

    @given(intervals_strategy, st.integers(1, 4))
    def test_duplicating_intervals_scales_concurrency(self, intervals, k):
        base = max_concurrency(intervals, 0, 20_000)
        stacked = max_concurrency(intervals * k, 0, 20_000)
        assert stacked == base * k


class TestTlpProperties:
    @given(st.lists(st.floats(0.0, 1.0), min_size=2, max_size=13))
    def test_tlp_bounded_by_levels(self, fractions):
        tlp = tlp_from_fractions(fractions)
        assert 0.0 <= tlp <= len(fractions) - 1

    @given(st.lists(st.floats(0.01, 1.0), min_size=2, max_size=13))
    def test_tlp_at_least_one_when_any_level_active(self, fractions):
        # With non-zero mass at every level >= 1, TLP >= 1
        # (up to float round-off).
        tlp = tlp_from_fractions(fractions)
        assert tlp >= 1.0 - 1e-9

    @given(st.lists(st.floats(0.0, 1.0), min_size=2, max_size=13),
           st.floats(0.01, 10.0))
    def test_tlp_invariant_under_scaling(self, fractions, scale):
        # Eq. 1 normalizes, so scaling all c_i together changes nothing.
        if sum(fractions[1:]) == 0:
            return
        if sum(f * scale for f in fractions[1:]) == 0:
            # Denormal underflow (e.g. 5e-324 * 0.5 == 0.0) can wipe
            # out all busy mass, collapsing the scaled TLP to 0.
            return
        if sum(fractions[1:]) < 1e-9 * sum(fractions):
            # Busy mass at the edge of float cancellation: Eq. 1's
            # ``1 - c0`` loses most of its significant bits (e.g.
            # busy 2e-13 against idle 1.0), so the computed TLP
            # wobbles beyond any fixed tolerance even though the
            # exact value is scale-invariant.
            return
        base = tlp_from_fractions(fractions)
        scaled = tlp_from_fractions([f * scale for f in fractions])
        assert abs(base - scaled) < 1e-6

    @given(st.floats(0.0, 0.99))
    def test_idle_fraction_never_changes_tlp(self, idle):
        # Adding idle time must not change TLP (idle is factored out).
        busy = [0.25, 0.5, 0.25]
        with_idle = [idle] + [f * (1 - idle) for f in busy]
        without = [0.0] + busy
        assert abs(tlp_from_fractions(with_idle)
                   - tlp_from_fractions(without)) < 1e-9


class TestGpuMetricProperties:
    @given(intervals_strategy)
    def test_union_never_exceeds_sum_method(self, intervals):
        rows = [("p.exe", 1, "3D", "k", s, s, e) for s, e in intervals]
        table = GpuUtilizationTable(rows, 0, 20_000)
        by_union = measure_gpu_utilization(table, method="union")
        by_sum = measure_gpu_utilization(table, method="sum")
        assert by_union.utilization_pct <= 100.0
        # Sum counts overlap multiple times, so (before capping) it is
        # at least the union.
        assert (by_sum.utilization_pct >= by_union.utilization_pct
                or by_sum.capped)


class TestKernelProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(1, 200), min_size=1, max_size=10),
           st.integers(0, 10_000))
    def test_timeouts_fire_in_order(self, delays, start):
        env = Environment(initial_time=start)
        fired = []
        for delay in delays:
            env.timeout(delay).callbacks.append(
                lambda e, d=delay: fired.append((env.now, d)))
        env.run()
        times = [t for t, _d in fired]
        assert times == sorted(times)
        assert len(fired) == len(delays)
        assert env.now == start + max(delays)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 100), max_size=20),
           st.integers(1, 5))
    def test_store_preserves_fifo_under_any_capacity(self, items, capacity):
        env = Environment()
        store = Store(env, capacity=capacity)
        received = []

        def producer():
            for item in items:
                yield store.put(item)

        def consumer():
            for _ in items:
                value = yield store.get()
                received.append(value)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert received == items
