"""Property-based tests of OS-scheduler invariants.

Random workloads (thread counts, burst/sleep patterns, machine widths)
must never violate the physics of the machine: one thread per logical
CPU at a time, no overlapping intervals on one CPU, retired work
bounded by capacity, TLP bounded by machine width.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import paper_machine
from repro.metrics import measure_tlp
from repro.os import Kernel, WorkClass
from repro.sim import MS, SECOND, Environment
from repro.trace import CpuUsagePreciseTable, TraceSession

workload_strategy = st.lists(
    st.tuples(
        st.integers(1, 40),     # burst ms
        st.integers(0, 30),     # sleep ms
        st.integers(1, 6),      # repetitions
        st.sampled_from(list(WorkClass)),
    ),
    min_size=1, max_size=10)

machine_width = st.sampled_from([2, 4, 6, 8, 12])


def run_workload(threads, width, smt=True):
    env = Environment()
    machine = paper_machine().with_logical_cpus(width) if smt else \
        paper_machine().with_smt(False).with_logical_cpus(width // 2 or 1)
    session = TraceSession(env)
    kernel = Kernel(env, machine, session=session, turbo=False)
    process = kernel.spawn_process("load.exe")
    session.start()

    def body(burst_ms, sleep_ms, reps, work_class):
        def run(ctx):
            for _ in range(reps):
                yield ctx.cpu(burst_ms * MS, work_class)
                if sleep_ms:
                    yield ctx.sleep(sleep_ms * MS)

        return run

    for spec in threads:
        process.spawn_thread(body(*spec))
    env.run(until=3 * SECOND)
    trace = session.stop()
    return machine, trace


class TestSchedulerInvariants:
    @settings(max_examples=30, deadline=None)
    @given(workload_strategy, machine_width)
    def test_no_overlap_on_any_logical_cpu(self, threads, width):
        _machine, trace = run_workload(threads, width)
        by_cpu = {}
        for record in trace.cswitches:
            by_cpu.setdefault(record.cpu, []).append(
                (record.switch_in_time, record.switch_out_time))
        for intervals in by_cpu.values():
            intervals.sort()
            for (a_start, a_stop), (b_start, _b_stop) in zip(
                    intervals, intervals[1:]):
                assert b_start >= a_stop

    @settings(max_examples=30, deadline=None)
    @given(workload_strategy, machine_width)
    def test_cpu_indices_within_topology(self, threads, width):
        machine, trace = run_workload(threads, width)
        for record in trace.cswitches:
            assert 0 <= record.cpu < machine.logical_cpus

    @settings(max_examples=30, deadline=None)
    @given(workload_strategy, machine_width)
    def test_busy_time_bounded_by_capacity(self, threads, width):
        machine, trace = run_workload(threads, width)
        busy = sum(r.duration for r in trace.cswitches)
        assert busy <= trace.duration * machine.logical_cpus

    @settings(max_examples=30, deadline=None)
    @given(workload_strategy, machine_width)
    def test_tlp_bounded_by_width(self, threads, width):
        machine, trace = run_workload(threads, width)
        table = CpuUsagePreciseTable.from_trace(trace)
        result = measure_tlp(table, machine.logical_cpus)
        assert 0.0 <= result.tlp <= machine.logical_cpus
        assert result.max_instantaneous <= machine.logical_cpus

    @settings(max_examples=20, deadline=None)
    @given(workload_strategy)
    def test_record_times_are_causal(self, threads):
        _machine, trace = run_workload(threads, 4)
        for record in trace.cswitches:
            assert record.ready_time <= record.switch_in_time
            assert record.switch_in_time <= record.switch_out_time

    @settings(max_examples=15, deadline=None)
    @given(workload_strategy, machine_width)
    def test_determinism_across_identical_runs(self, threads, width):
        _m1, first = run_workload(threads, width)
        _m2, second = run_workload(threads, width)
        assert len(first.cswitches) == len(second.cswitches)
        assert [(r.cpu, r.switch_in_time, r.switch_out_time)
                for r in first.cswitches] == \
               [(r.cpu, r.switch_in_time, r.switch_out_time)
                for r in second.cswitches]

    @settings(max_examples=15, deadline=None)
    @given(workload_strategy)
    def test_single_thread_never_migrates_mid_burst_run(self, threads):
        # With one thread on a wide machine there is never contention,
        # so every slice should land on the same (first-choice) CPU.
        _machine, trace = run_workload(threads[:1], 12)
        cpus = {r.cpu for r in trace.cswitches}
        assert len(cpus) == 1
