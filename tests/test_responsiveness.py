"""Tests for interactive response-latency metrics."""

import pytest

from repro.apps import create_app
from repro.harness import run_app_once
from repro.hardware import paper_machine
from repro.metrics import (
    pair_marks,
    percentile,
    response_summary,
    tail_latency,
)
from repro.sim import SECOND
from repro.trace import MarkRecord

SHORT = 20 * SECOND


def mark(process, time, label):
    return MarkRecord(process, 1, time, label)


class TestPairing:
    def test_simple_pair(self):
        marks = [mark("a", 10, "input:save"), mark("a", 60, "response:save")]
        (latency,) = pair_marks(marks)
        assert latency.label == "save"
        assert latency.latency_us == 50

    def test_fifo_matching_for_repeated_labels(self):
        marks = [
            mark("a", 0, "input:op"), mark("a", 10, "input:op"),
            mark("a", 30, "response:op"), mark("a", 70, "response:op"),
        ]
        latencies = pair_marks(marks)
        assert [l.latency_us for l in latencies] == [30, 60]

    def test_unmatched_trailing_input_dropped(self):
        marks = [mark("a", 0, "input:op")]
        assert pair_marks(marks) == []

    def test_process_filtering(self):
        marks = [
            mark("a", 0, "input:op"), mark("a", 5, "response:op"),
            mark("b", 0, "input:op"), mark("b", 9, "response:op"),
        ]
        latencies = pair_marks(marks, processes={"b"})
        assert [l.latency_us for l in latencies] == [9]

    def test_non_interaction_marks_ignored(self):
        marks = [mark("a", 0, "phase:render"),
                 mark("a", 1, "input:op"), mark("a", 4, "response:op")]
        assert len(pair_marks(marks)) == 1

    def test_summary_requires_interactions(self):
        with pytest.raises(ValueError):
            response_summary([])


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 0.5) == 3

    def test_p100_is_max(self):
        assert percentile([7, 1, 9], 1.0) == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1], 1.5)


class TestIntegration:
    def test_interactive_apps_emit_interaction_marks(self):
        run = run_app_once(create_app("word"), duration_us=SHORT, seed=2)
        summary = response_summary(run.marks)
        assert summary.n > 10
        assert summary.mean > 0

    def test_latency_improves_with_second_cpu(self):
        # The Flautner-era observation on the 2018 substrate.
        def mean_latency(cores):
            machine = paper_machine().with_smt(False).with_logical_cpus(cores)
            run = run_app_once(create_app("photoshop"), machine=machine,
                               duration_us=30 * SECOND, seed=2)
            return response_summary(run.marks).mean

        assert mean_latency(2) < mean_latency(1)

    def test_tail_latency_at_least_mean(self):
        run = run_app_once(create_app("excel"), duration_us=SHORT, seed=2)
        summary = response_summary(run.marks)
        assert tail_latency(run.marks, 0.95) >= summary.mean * 0.8
