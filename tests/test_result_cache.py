"""Tests for the content-addressed simulation result cache."""

import pickle

import pytest

from repro.apps.transcoding import HandBrake
from repro.harness import (
    ResultCache,
    SerialExecutor,
    make_spec,
    run_app,
    run_suite,
)
from repro.harness.cache import _FRAME, CACHE_MAGIC, spec_key
from repro.hardware import GTX_680, paper_machine
from repro.sim import MS, SECOND

SHORT = 3 * SECOND


class TestSpecKeys:
    def test_equivalent_specs_share_a_key(self):
        assert spec_key(make_spec("excel", seed=1)) == \
            spec_key(make_spec("excel", machine=paper_machine(), seed=1))

    def test_key_sensitive_to_seed(self):
        assert spec_key(make_spec("excel", seed=1)) != \
            spec_key(make_spec("excel", seed=2))

    def test_key_sensitive_to_machine(self):
        base = paper_machine()
        assert spec_key(make_spec("excel", machine=base)) != \
            spec_key(make_spec("excel", machine=base.with_logical_cpus(4)))
        assert spec_key(make_spec("excel", machine=base)) != \
            spec_key(make_spec("excel", machine=base.with_gpu(GTX_680)))

    def test_key_sensitive_to_quantum(self):
        assert spec_key(make_spec("excel", quantum=15 * MS)) != \
            spec_key(make_spec("excel", quantum=30 * MS))

    def test_key_sensitive_to_app_config(self):
        assert spec_key(make_spec("winx", config={"use_gpu": True})) != \
            spec_key(make_spec("winx", config={"use_gpu": False}))

    def test_key_sensitive_to_code_version(self):
        spec = make_spec("excel")
        assert spec_key(spec, code_version="1") != \
            spec_key(spec, code_version="2")

    def test_model_instances_are_cacheable(self):
        assert spec_key(make_spec(HandBrake())) is not None
        assert spec_key(make_spec(HandBrake(workers=2))) != \
            spec_key(make_spec(HandBrake(workers=4)))

    def test_unpicklable_state_is_uncacheable(self):
        app = HandBrake()
        app.on_done = lambda: None
        assert spec_key(make_spec(app)) is None


class TestResultCache:
    def test_hit_returns_identical_result(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_app("excel", duration_us=SHORT, iterations=2, cache=cache)
        assert (cache.hits, cache.misses, cache.stores) == (0, 2, 2)

        executor = SerialExecutor(cache=ResultCache(tmp_path))
        warm = run_app("excel", duration_us=SHORT, iterations=2,
                       executor=executor)
        assert executor.executed == 0
        assert executor.cache.hits == 2
        assert warm.fractions == cold.fractions
        assert warm.tlp == cold.tlp
        assert warm.gpu_util == cold.gpu_util

    def test_warm_suite_runs_zero_simulations(self, tmp_path):
        names = ("excel", "vlc")
        cold = run_suite(names=names, duration_us=SHORT, iterations=2,
                         cache=ResultCache(tmp_path))
        executor = SerialExecutor(cache=ResultCache(tmp_path))
        warm = run_suite(names=names, duration_us=SHORT, iterations=2,
                         executor=executor)
        assert executor.executed == 0
        assert executor.cache.hits == 4
        for name in names:
            assert warm.results[name].fractions == cold.results[name].fractions

    def test_keep_trace_bypasses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_app("excel", duration_us=SHORT, iterations=1, keep_trace=True,
                cache=cache)
        assert (cache.hits, cache.misses, cache.stores) == (0, 0, 0)
        # And a keep_trace re-run is never served a stale cached result.
        result = run_app("excel", duration_us=SHORT, iterations=1,
                         keep_trace=True, cache=cache)
        assert result.runs[0].trace is not None

    def test_corrupt_entry_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_app("excel", duration_us=SHORT, iterations=1, cache=cache)
        (entry,) = list(tmp_path.rglob("*.pkl"))
        entry.write_bytes(b"not a pickle")

        executor = SerialExecutor(cache=ResultCache(tmp_path))
        again = run_app("excel", duration_us=SHORT, iterations=1,
                        executor=executor)
        assert executor.executed == 1          # corrupt entry = miss
        assert executor.cache.misses == 1
        assert again.fractions == cold.fractions
        # The recomputed result replaced the corrupt file, framed with
        # the integrity header that gates every load.
        blob = entry.read_bytes()
        magic, length, _crc = _FRAME.unpack_from(blob)
        payload = blob[_FRAME.size:]
        assert magic == CACHE_MAGIC and len(payload) == length
        assert pickle.loads(payload).tlp.fractions == \
            cold.runs[0].tlp.fractions

    def test_uncacheable_app_still_runs(self, tmp_path):
        app = HandBrake()
        app.on_done = lambda: None
        cache = ResultCache(tmp_path)
        result = run_app(app, duration_us=SHORT, iterations=1, cache=cache)
        assert result.tlp.mean > 0
        assert (cache.hits, cache.misses, cache.stores) == (0, 0, 0)

    def test_cross_app_isolation(self, tmp_path):
        cache = ResultCache(tmp_path)
        excel = run_app("excel", duration_us=SHORT, iterations=1, cache=cache)
        vlc = run_app("vlc", duration_us=SHORT, iterations=1, cache=cache)
        assert cache.hits == 0 and cache.misses == 2
        assert excel.fractions != vlc.fractions


class TestEntryFraming:
    """The integrity frame is checked before any unpickling."""

    def _seed_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_app("excel", duration_us=SHORT, iterations=1, cache=cache)
        (entry,) = list(tmp_path.rglob("*.pkl"))
        return entry

    def _load(self, tmp_path, entry):
        cache = ResultCache(tmp_path)
        key = entry.stem
        return cache.load_classified(key), cache

    def test_valid_frame_round_trips(self, tmp_path):
        entry = self._seed_entry(tmp_path)
        (kind, payload), cache = self._load(tmp_path, entry)
        assert kind == "hit" and payload is not None
        assert cache.corrupt == 0

    def test_bad_crc_is_corrupt(self, tmp_path):
        # Flip one payload byte: still a frame, CRC no longer vouches.
        entry = self._seed_entry(tmp_path)
        blob = bytearray(entry.read_bytes())
        blob[-1] ^= 0xFF
        entry.write_bytes(bytes(blob))
        (kind, payload), cache = self._load(tmp_path, entry)
        assert (kind, payload) == ("corrupt", None)
        assert cache.corrupt == 1
        assert not entry.exists()

    def test_bad_magic_is_corrupt(self, tmp_path):
        entry = self._seed_entry(tmp_path)
        blob = bytearray(entry.read_bytes())
        blob[:8] = b"XXXXXXXX"
        entry.write_bytes(bytes(blob))
        (kind, payload), _ = self._load(tmp_path, entry)
        assert (kind, payload) == ("corrupt", None)

    def test_truncated_entry_is_corrupt(self, tmp_path):
        # A truncated write is caught by the length field even though
        # the prefix might still be a loadable pickle stream.
        entry = self._seed_entry(tmp_path)
        blob = entry.read_bytes()
        entry.write_bytes(blob[:len(blob) - 16])
        (kind, payload), _ = self._load(tmp_path, entry)
        assert (kind, payload) == ("corrupt", None)

    def test_unframed_pickle_is_corrupt(self, tmp_path):
        # A bare pickle (the pre-frame format, or a foreign file) never
        # reaches the unpickler at all.
        entry = self._seed_entry(tmp_path)
        entry.write_bytes(pickle.dumps({"not": "a run"}))
        (kind, payload), _ = self._load(tmp_path, entry)
        assert (kind, payload) == ("corrupt", None)

    def test_short_file_is_corrupt(self, tmp_path):
        entry = self._seed_entry(tmp_path)
        entry.write_bytes(b"tiny")
        (kind, payload), _ = self._load(tmp_path, entry)
        assert (kind, payload) == ("corrupt", None)
