"""Kill–resume integration: SIGKILL a live CLI sweep, resume it, and
prove the resumed results are byte-identical to an uninterrupted run.

This is the end-to-end version of the journal tests in
``test_supervisor.py``: a real ``python -m repro suite`` process, a
real kill signal mid-sweep, and a comparison of the saved JSON files
(which serialize every metric float, so byte equality is bit-identity).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness.supervisor import SweepJournal

REPO_ROOT = Path(__file__).resolve().parent.parent
APPS = "chrome,word,excel,firefox,vlc,photoshop"
ITERATIONS = 3
TOTAL_RUNS = 6 * ITERATIONS


def suite_cmd(json_out, journal=None, resume=None):
    cmd = [sys.executable, "-m", "repro", "suite", "--apps", APPS,
           "--duration", "5", "--iterations", str(ITERATIONS),
           "--json", str(json_out)]
    if journal is not None:
        cmd += ["--journal", str(journal)]
    if resume is not None:
        cmd += ["--resume", str(resume)]
    return cmd


def run_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def journal_lines(path):
    try:
        return len(path.read_text().splitlines())
    except FileNotFoundError:
        return 0


def start_and_kill(json_out, journal, sig, min_runs=2, timeout_s=60):
    """Start a sweep and signal it once ``min_runs`` are journaled.

    Returns the process's exit code, or None if the sweep finished
    before the signal could land (callers retry with a fresh journal).
    """
    proc = subprocess.Popen(
        suite_cmd(json_out, journal=journal), env=run_env(),
        cwd=REPO_ROOT, stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + timeout_s
    try:
        while journal_lines(journal) < 1 + min_runs:
            if proc.poll() is not None or time.monotonic() > deadline:
                proc.kill()
                proc.wait()
                return None
            time.sleep(0.002)
        proc.send_signal(sig)
        returncode = proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    _, entries = SweepJournal.load(journal)
    if len(entries) >= TOTAL_RUNS:
        return None     # everything finished before the signal landed
    return returncode


def interrupted_sweep(tmp_path, sig, name):
    for attempt in range(5):
        journal = tmp_path / f"{name}-{attempt}.jsonl"
        json_out = tmp_path / f"{name}-{attempt}.json"
        returncode = start_and_kill(json_out, journal, sig)
        if returncode is not None:
            return journal, json_out, returncode
    pytest.skip("could not interrupt the sweep mid-flight")


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("baseline")
    json_out = tmp / "suite.json"
    subprocess.run(
        suite_cmd(json_out, journal=tmp / "suite.jsonl"), env=run_env(),
        cwd=REPO_ROOT, check=True, stdout=subprocess.DEVNULL,
        timeout=300)
    return json_out


class TestKillResume:
    def test_sigkill_then_resume_is_bit_identical(self, tmp_path,
                                                  baseline):
        journal, json_out, returncode = interrupted_sweep(
            tmp_path, signal.SIGKILL, "killed")
        assert returncode != 0
        assert not json_out.exists()    # died before saving

        resumed_out = tmp_path / "resumed.json"
        done = subprocess.run(
            suite_cmd(resumed_out, resume=journal), env=run_env(),
            cwd=REPO_ROOT, stdout=subprocess.DEVNULL, timeout=300)
        assert done.returncode == 0
        _, entries = SweepJournal.load(journal)
        assert len(entries) == TOTAL_RUNS

        assert resumed_out.read_bytes() == baseline.read_bytes()
        payload = json.loads(resumed_out.read_text())
        assert sorted(payload["results"]) == sorted(APPS.split(","))
        assert payload["failures"] == []

    def test_sigint_leaves_resumable_journal(self, tmp_path, baseline):
        journal, _, returncode = interrupted_sweep(
            tmp_path, signal.SIGINT, "interrupted")
        assert returncode != 0
        header, entries = SweepJournal.load(journal)
        assert 0 < len(entries) < TOTAL_RUNS
        assert header["total"] == TOTAL_RUNS

        resumed_out = tmp_path / "resumed.json"
        done = subprocess.run(
            suite_cmd(resumed_out, resume=journal), env=run_env(),
            cwd=REPO_ROOT, stdout=subprocess.DEVNULL, timeout=300)
        assert done.returncode == 0
        assert resumed_out.read_bytes() == baseline.read_bytes()
