"""Partial-trace salvage: longest-valid-prefix recovery.

The degraded-mode analytics contract: every registered fault corrupts
a suffix of the trace, so ``salvage_prefix`` must recover a positive
prefix that passes the full invariant catalogue, and ``run_app_once``
with ``salvage=True`` must turn what would have been an aborted run
into a ``partial=True`` result whose metrics are recomputed over
exactly that prefix.
"""

import pytest

from repro.apps import create_app
from repro.harness.runner import run_app_once
from repro.hardware import paper_machine
from repro.metrics import measure_gpu_utilization, measure_tlp
from repro.metrics.intervals import first_time_above
from repro.sim import SECOND
from repro.trace import CpuUsagePreciseTable, GpuUtilizationTable
from repro.trace.salvage import salvage_prefix, truncate_trace
from repro.validate import (
    FAULTS,
    TraceValidationError,
    TraceValidator,
    inject_fault,
)

DURATION = 1 * SECOND
SEED = 2019
N_LOGICAL = paper_machine().logical_cpus


@pytest.fixture(scope="module")
def clean_run():
    return run_app_once(create_app("chrome"), duration_us=DURATION,
                        seed=SEED, keep_trace=True)


class TestFirstTimeAbove:
    def test_reports_earliest_positive_excursion(self):
        events = [(0, 1), (5, 1), (5, 1), (9, -1), (9, -1), (12, -1)]
        assert first_time_above(events, 2) == 5

    def test_zero_width_excursions_ignored(self):
        # +2 at t=7 immediately cancelled at t=7: no positive span.
        events = [(0, 1), (7, 1), (7, 1), (7, -1), (7, -1), (10, -1)]
        assert first_time_above(events, 2) is None

    def test_never_above(self):
        events = [(0, 1), (4, -1), (4, 1), (8, -1)]
        assert first_time_above(events, 1) is None


class TestTruncateTrace:
    def test_window_and_straddlers(self, clean_run):
        trace = clean_run.trace
        cut = (trace.start_time + trace.stop_time) // 2
        truncation = truncate_trace(trace, cut)
        shorter = truncation.trace
        assert shorter.stop_time == cut
        assert all(row[7] <= cut for row in shorter.cswitch_rows())
        assert all(row[6] <= cut for row in shorter.gpu_rows())
        kept = len(list(shorter.cswitch_rows()))
        assert kept + truncation.dropped_cswitches == \
            len(list(trace.cswitch_rows()))
        assert truncation.dropped_cswitches > 0

    def test_cut_before_start_rejected(self, clean_run):
        with pytest.raises(ValueError):
            truncate_trace(clean_run.trace, clean_run.trace.start_time - 1)

    def test_truncation_is_itself_valid(self, clean_run):
        cut = (clean_run.trace.start_time + clean_run.trace.stop_time) // 2
        shorter = truncate_trace(clean_run.trace, cut).trace
        assert TraceValidator(N_LOGICAL).validate(shorter).ok


class TestSalvagePrefix:
    def test_valid_trace_passes_through(self, clean_run):
        result = salvage_prefix(clean_run.trace, N_LOGICAL)
        assert result.trace is clean_run.trace
        assert result.cut_time == clean_run.trace.stop_time
        assert result.dropped_cswitches == 0

    @pytest.mark.parametrize("fault", sorted(FAULTS))
    @pytest.mark.parametrize("seed", (0, 1))
    def test_every_fault_salvages_to_a_valid_prefix(self, clean_run,
                                                    fault, seed):
        bad = inject_fault(clean_run.trace, fault, seed=seed)
        report = TraceValidator(N_LOGICAL).validate(bad)
        assert not report.ok
        result = salvage_prefix(bad, N_LOGICAL, report=report)
        assert result is not None, f"{fault} unsalvageable"
        assert result.salvaged_us > 0
        assert result.cut_time < clean_run.trace.stop_time or \
            fault == "truncated-trace"
        assert TraceValidator(N_LOGICAL).validate(result.trace).ok
        assert FAULTS[fault].violates in result.invariants

    def test_violation_time_hints_present(self, clean_run):
        # The cut search relies on violations carrying a time; every
        # registered fault must produce at least one hinted violation.
        for fault in FAULTS:
            bad = inject_fault(clean_run.trace, fault, seed=0)
            report = TraceValidator(N_LOGICAL).validate(bad)
            assert any(v.time is not None for v in report.violations), fault

    def test_payload_is_json_shaped(self, clean_run):
        bad = inject_fault(clean_run.trace, "timestamp-skew", seed=0)
        payload = salvage_prefix(bad, N_LOGICAL).to_payload()
        assert payload["salvaged_us"] == \
            payload["cut_time"] - clean_run.trace.start_time
        assert "thread-monotonic" in payload["invariants"]


class TestRunSalvage:
    def test_streaming_incompatible(self):
        with pytest.raises(ValueError, match="streaming"):
            run_app_once(create_app("chrome"), duration_us=DURATION,
                         streaming=True, salvage=True)

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            run_app_once(create_app("chrome"), duration_us=DURATION,
                         fault="no-such-fault")

    def test_clean_run_not_partial(self):
        run = run_app_once(create_app("chrome"), duration_us=DURATION,
                           seed=SEED, salvage=True)
        assert run.partial is False
        assert run.salvage is None

    def test_fault_without_salvage_raises(self):
        with pytest.raises(TraceValidationError):
            run_app_once(create_app("chrome"), duration_us=DURATION,
                         seed=SEED, fault="timestamp-skew", validate=True)

    @pytest.mark.parametrize("fault", sorted(FAULTS))
    def test_fault_with_salvage_is_partial(self, fault):
        run = run_app_once(create_app("chrome"), duration_us=DURATION,
                           seed=SEED, fault=fault, fault_seed=1,
                           salvage=True)
        assert run.partial is True
        assert run.salvage.reason == "invalid-trace"
        assert 0 < run.salvage.salvaged_us <= DURATION
        assert FAULTS[fault].violates in run.salvage.invariants

    def test_partial_metrics_match_salvaged_prefix(self, clean_run):
        """The degraded run's Eq.-1 TLP / GPU utilization are exactly
        the metrics of the salvaged prefix, recomputed — not scaled or
        estimated from the full-window numbers."""
        fault, seed = "dropped-switch-out", 1
        run = run_app_once(create_app("chrome"), duration_us=DURATION,
                           seed=SEED, fault=fault, fault_seed=seed,
                           salvage=True)
        bad = inject_fault(clean_run.trace, fault, seed=seed)
        prefix = salvage_prefix(bad, N_LOGICAL)
        expected_tlp = measure_tlp(
            CpuUsagePreciseTable.from_trace(prefix.trace), N_LOGICAL,
            processes=clean_run.process_names)
        expected_gpu = measure_gpu_utilization(
            GpuUtilizationTable.from_trace(prefix.trace),
            processes=clean_run.process_names)
        assert run.tlp.tlp == expected_tlp.tlp
        assert run.tlp.fractions == expected_tlp.fractions
        assert run.gpu_util.utilization_pct == expected_gpu.utilization_pct
        assert run.salvage.cut_time == prefix.cut_time

    def test_crash_salvage_keeps_partial_capture(self):
        run = run_app_once(create_app("chrome"), duration_us=DURATION,
                           seed=SEED, fault="worker-crash", salvage=True)
        assert run.partial is True
        assert run.salvage.reason == "crash"
        assert "InjectedCrash" in run.salvage.detail
        # The detonator fires at half the window.
        assert run.salvage.salvaged_us == DURATION // 2
        assert run.tlp.tlp > 0

    def test_crash_without_salvage_propagates(self):
        from repro.validate import InjectedCrash

        with pytest.raises(InjectedCrash):
            run_app_once(create_app("chrome"), duration_us=DURATION,
                         seed=SEED, fault="worker-crash")


class TestSessionAbort:
    def test_abort_not_recording_is_none(self):
        from repro.sim import Environment
        from repro.trace import TraceSession

        session = TraceSession(Environment())
        assert session.abort() is None

    def test_abort_while_recording_seals_trace(self):
        from repro.sim import Environment
        from repro.trace import TraceSession

        env = Environment()
        session = TraceSession(env)
        session.start()
        trace = session.abort()
        assert trace is not None
        assert session.recording is False
        assert session.abort() is None
