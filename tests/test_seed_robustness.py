"""Cross-seed robustness: conclusions must not depend on the seed.

The paper argues its results are trustworthy because iteration sigmas
are small.  We hold the simulation to the same bar across a wider seed
sweep than the 3-iteration protocol: for representative applications
from every TLP regime, the measured TLP must stay within a tight band
across five distinct seeds, and the qualitative orderings the paper
reports must hold for every seed.
"""

import pytest

from repro.apps import create_app
from repro.harness import run_app_once
from repro.sim import SECOND

DURATION = 20 * SECOND
SEEDS = (11, 23, 37, 51, 73)

#: app -> maximum allowed TLP spread (max - min) across seeds.
SPREAD_LIMITS = {
    "word": 0.25,           # serial interactive
    "vlc": 0.3,             # pipelined playback
    "project-cars-2": 0.5,  # frame-paced VR
    "handbrake": 0.4,       # throughput pipeline
    "easyminer": 0.2,       # fully parallel
}


def tlps(name):
    return [run_app_once(create_app(name), duration_us=DURATION,
                         seed=seed).tlp.tlp for seed in SEEDS]


@pytest.mark.parametrize("name", sorted(SPREAD_LIMITS))
def test_tlp_stable_across_seeds(name):
    values = tlps(name)
    spread = max(values) - min(values)
    assert spread <= SPREAD_LIMITS[name], (name, values)


def test_orderings_hold_for_every_seed():
    # The coarse Table II ordering word < vlc < project-cars-2 <
    # handbrake < easyminer must hold seed by seed, not just on
    # average.
    per_seed = {name: tlps(name) for name in SPREAD_LIMITS}
    for index in range(len(SEEDS)):
        chain = [per_seed[name][index]
                 for name in ("word", "vlc", "project-cars-2",
                              "handbrake", "easyminer")]
        assert chain == sorted(chain), (SEEDS[index], chain)
