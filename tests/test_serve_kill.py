"""Kill–recover integration for the *service*: SIGKILL a live
``repro serve`` daemon mid-sweep, restart it over the same ledger, and
prove the recovered result is byte-identical to an uninterrupted run
with zero re-simulation of the spans that finished before the kill.

This is the daemon-level counterpart of ``test_resume_kill.py``: a
real server process on a real port, a real SIGKILL, recovery driven
entirely by the write-ahead ledger + content-addressed cache, and
byte-equality of the result payload (every metric float serializes, so
this is bit-identity).
"""

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
APPS = ["chrome", "word", "excel", "vlc"]
ITERATIONS = 2
TOTAL_RUNS = len(APPS) * ITERATIONS
SWEEP = {"apps": APPS, "duration_s": 4.0, "iterations": ITERATIONS}
#: Spans that must be on disk before the kill (the "mid-sweep" proof).
MIN_CACHED = 2


def run_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def start_server(ledger, cache):
    """Launch ``repro serve`` on an ephemeral port; returns
    ``(process, port)`` once the banner announces the bound port."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--ledger", str(ledger), "--cache", str(cache)],
        env=run_env(), cwd=REPO_ROOT, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, text=True)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if line.startswith("serving on http://"):
            return proc, int(line.rsplit(":", 1)[1])
    proc.kill()
    proc.wait()
    raise AssertionError("server never announced its port")


def http(port, method, path, body=None, timeout=120):
    payload = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=payload, method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def cached_entries(cache):
    return len(list(Path(cache).glob("*/*.pkl")))


def ledger_has_finished(ledger):
    try:
        text = Path(ledger).read_text()
    except FileNotFoundError:
        return False
    return '"event":"finished"' in text


def interrupted_serve(tmp_path):
    """SIGKILL a serving daemon once >= MIN_CACHED spans are cached but
    before the sweep finishes; returns ``(ledger, cache, job_id,
    pre_kill_entries)`` (retrying if the sweep outruns the kill)."""
    for attempt in range(5):
        ledger = tmp_path / f"serve-{attempt}.jsonl"
        cache = tmp_path / f"serve-{attempt}.cache"
        proc, port = start_server(ledger, cache)
        try:
            status, body = http(port, "POST", "/sweeps", SWEEP)
            assert status == 202, body
            job_id = json.loads(body)["id"]
            deadline = time.monotonic() + 240
            while cached_entries(cache) < MIN_CACHED:
                if proc.poll() is not None \
                        or time.monotonic() > deadline:
                    break
                time.sleep(0.01)
            pre_kill = cached_entries(cache)
        finally:
            proc.kill()
            proc.wait()
        if MIN_CACHED <= pre_kill and not ledger_has_finished(ledger):
            return ledger, cache, job_id, pre_kill
    pytest.skip("could not interrupt the served sweep mid-flight")


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """What an uninterrupted ``repro suite --json`` saves for SWEEP."""
    json_out = tmp_path_factory.mktemp("serve-baseline") / "suite.json"
    subprocess.run(
        [sys.executable, "-m", "repro", "suite",
         "--apps", ",".join(APPS), "--duration", str(SWEEP["duration_s"]),
         "--iterations", str(ITERATIONS), "--json", str(json_out)],
        env=run_env(), cwd=REPO_ROOT, check=True,
        stdout=subprocess.DEVNULL, timeout=600)
    return json_out.read_bytes()


class TestServeKillRecover:
    def test_sigkill_restart_recovers_byte_identical(self, tmp_path,
                                                     baseline):
        ledger, cache, job_id, pre_kill = interrupted_serve(tmp_path)

        proc, port = start_server(ledger, cache)
        try:
            # The interrupted job was re-admitted from the ledger under
            # the same content-addressed id.
            status, body = http(port, "GET", f"/sweeps/{job_id}")
            assert status == 200, body
            assert json.loads(body)["recovered"] == "interrupted"

            deadline = time.monotonic() + 240
            while time.monotonic() < deadline:
                status, body = http(port, "GET",
                                    f"/sweeps/{job_id}/result")
                if status == 200:
                    break
                assert status == 202, body
                time.sleep(0.2)
            assert status == 200

            # Byte-identical to the uninterrupted run...
            assert body == baseline

            # ...with zero re-simulation of the spans that finished
            # before the kill: they restored from the cache.
            status, body = http(port, "GET", f"/sweeps/{job_id}")
            payload = json.loads(body)
            assert payload["state"] == "done"
            assert payload["cache_hits"] >= pre_kill
            assert payload["executed"] <= TOTAL_RUNS - pre_kill
            assert payload["executed"] + payload["cache_hits"] \
                == TOTAL_RUNS

            status, body = http(port, "GET", "/healthz")
            assert json.loads(body)["recovered"]["interrupted"] == 1

            status, _ = http(port, "POST", "/shutdown",
                             {"drain_s": 30})
            assert status == 202
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
