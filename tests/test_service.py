"""End-to-end tests for the sweep service.

Covers the full daemon lifecycle against a real server on an ephemeral
port — submit, poll, stream, fetch — plus the framing layer, request
validation, content-addressed dedup and conditional reuse, the
CLI-byte-identity acceptance check, mutation conflicts, graceful
drain, and the per-submission executor re-resolution regression.

PR 10 additions: admission control (bounded queue -> 429 +
``Retry-After``, ``/readyz``), TTL job eviction, the bounded shutdown
drain, the crash circuit breaker, and write-ahead ledger recovery.
"""

import asyncio
import contextlib
import http.client
import json
import threading
import time

import pytest

from repro.cli import main
from repro.reporting.payloads import canonical_json_bytes
from repro.service import ServiceServer, SweepRequest, SweepService
from repro.service.http import (
    BadRequest,
    HttpRequest,
    HttpResponse,
    parse_head,
    read_request,
    render_head,
)
from repro.validate.golden import default_golden_path

DSE_PATH = default_golden_path().parent / "golden_dse.json"

#: Small, fast sweep shared by most lifecycle tests.
SWEEP = {"apps": ["excel", "vlc"], "duration_s": 0.4, "iterations": 1}


# -- helpers -------------------------------------------------------------

def make_request(method, path, body=None, headers=None):
    """An in-process :class:`HttpRequest` (no sockets involved)."""
    payload = json.dumps(body).encode("utf-8") if body is not None else b""
    return HttpRequest(method=method, target=path, path=path, query={},
                       headers=headers or {}, body=payload)


def http_call(port, method, path, body=None, headers=None):
    """One request over a real TCP connection; returns
    ``(status, headers, body)``."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        payload = (json.dumps(body).encode("utf-8")
                   if body is not None else None)
        conn.request(method, path, body=payload, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def wait_job(service, job_id, timeout=120.0):
    job = service.store.find(job_id)
    assert job is not None and job.wait_done(timeout)
    return job


@contextlib.contextmanager
def running_server(service):
    server = ServiceServer(service, port=0)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.wait_ready(15)
    try:
        yield server
    finally:
        server.request_stop()
        thread.join(timeout=15)
        service.close()


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("service-cache")


@pytest.fixture(scope="module")
def server(cache_dir):
    with running_server(SweepService(cache=cache_dir)) as srv:
        yield srv


# -- framing -------------------------------------------------------------

def _read(blob):
    async def go():
        reader = asyncio.StreamReader(limit=64 * 1024)
        reader.feed_data(blob)
        reader.feed_eof()
        return await read_request(reader)
    return asyncio.run(go())


class TestHttpFraming:
    def test_request_with_query_and_body(self):
        request = _read(b"POST /sweeps?x=1&y=b%20c HTTP/1.1\r\n"
                        b"Host: h\r\nContent-Length: 7\r\n\r\n"
                        b'{"a":1}')
        assert request.method == "POST"
        assert request.path == "/sweeps"
        assert request.query == {"x": "1", "y": "b c"}
        assert request.json() == {"a": 1}

    def test_clean_eof_between_requests_is_none(self):
        assert _read(b"") is None

    def test_truncated_head_rejected(self):
        with pytest.raises(BadRequest):
            _read(b"GET / HTTP/1.1\r\nHos")

    def test_malformed_request_line_rejected(self):
        with pytest.raises(BadRequest):
            _read(b"NONSENSE\r\n\r\n")

    def test_bad_content_length_rejected(self):
        with pytest.raises(BadRequest):
            _read(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")

    def test_truncated_body_rejected(self):
        with pytest.raises(BadRequest):
            _read(b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort")

    def test_parse_head_lowercases_header_names(self):
        method, target, headers = parse_head(
            b"GET /x HTTP/1.1\r\nIf-None-Match: \"abc\"")
        assert method == "GET"
        assert target == "/x"
        assert headers == {"if-none-match": '"abc"'}

    def test_render_head_fixed_and_chunked(self):
        response = HttpResponse(status=200, body=b"hello",
                                headers={"X-Test": "1"})
        head = render_head(response)
        assert b"HTTP/1.1 200 OK" in head
        assert b"Content-Length: 5" in head
        head = render_head(response, chunked=True, keep_alive=False)
        assert b"Transfer-Encoding: chunked" in head
        assert b"Connection: close" in head

    def test_non_object_body_rejected(self):
        request = make_request("POST", "/sweeps")
        request.body = b"[1, 2]"
        with pytest.raises(BadRequest):
            request.json()


# -- request validation --------------------------------------------------

class TestSweepRequestValidation:
    def test_defaults_match_cli_surface(self):
        request = SweepRequest.from_payload({"apps": ["excel"]})
        assert request.duration_s == 60.0
        assert request.iterations == 3
        assert request.smt is True

    def test_machine_resolution_matches_cli(self):
        request = SweepRequest.from_payload({
            "apps": ["excel"],
            "machine": {"cores": 4, "smt": False, "gpu": "gtx-680"}})
        machine = request.machine()
        assert machine.logical_cpus == 4
        assert machine.smt_enabled is False
        assert machine.gpu.name == "NVIDIA GTX 680"

    @pytest.mark.parametrize("payload,fragment", [
        ({}, "apps"),
        ({"apps": []}, "apps"),
        ({"apps": "excel"}, "apps"),
        ({"apps": ["minesweeper"]}, "unknown applications"),
        ({"apps": ["excel"], "duration_s": 0}, "duration_s"),
        ({"apps": ["excel"], "duration_s": "long"}, "duration_s"),
        ({"apps": ["excel"], "iterations": 0}, "iterations"),
        ({"apps": ["excel"], "machine": {"sockets": 2}}, "machine"),
        ({"apps": ["excel"], "machine": {"cores": 0}}, "cores"),
        ({"apps": ["excel"], "machine": {"gpu": "voodoo2"}}, "GPU"),
        ({"apps": ["excel"], "streaming": "yes"}, "streaming"),
        ({"apps": ["excel"], "salvage": True, "streaming": True},
         "incompatible"),
        ({"apps": ["excel"], "fault": "meteor-strike"}, "fault"),
        ({"apps": ["excel"], "turbo": False}, "unknown request fields"),
    ])
    def test_invalid_payloads_rejected(self, payload, fragment):
        with pytest.raises(BadRequest, match=fragment):
            SweepRequest.from_payload(payload)

    def test_invalid_submission_is_a_400_not_a_500(self):
        service = SweepService()
        try:
            response = service.dispatch(
                make_request("POST", "/sweeps", {"apps": ["nope"]}))
            assert response.status == 400
            assert "unknown applications" in json.loads(response.body)["error"]
        finally:
            service.close()


# -- lifecycle over a real server ----------------------------------------

class TestServiceLifecycle:
    def test_submit_poll_stream_fetch(self, server):
        status, _, body = http_call(server.port, "POST", "/sweeps", SWEEP)
        assert status == 202
        submission = json.loads(body)
        job_id = submission["id"]
        assert submission["total_runs"] == 2
        assert submission["deduplicated"] is False
        assert submission["backend"].startswith(("serial", "pool"))

        # Stream progress as NDJSON; one app event per application,
        # then the terminal done event — read incrementally off the
        # chunked response while the sweep runs.
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=120)
        try:
            conn.request("GET", f"/sweeps/{job_id}/stream")
            response = conn.getresponse()
            assert response.status == 200
            events = [json.loads(line) for line in response]
        finally:
            conn.close()
        assert [e["event"] for e in events] == ["app", "app", "done"]
        assert {e["app"] for e in events[:2]} == {"excel", "vlc"}
        assert events[0]["completed"] < events[1]["completed"] == 2
        assert events[-1]["executed"] >= 0

        status, _, body = http_call(server.port, "GET",
                                    f"/sweeps/{job_id}")
        payload = json.loads(body)
        assert status == 200
        assert payload["state"] == "done"
        assert payload["progress"]["completed_runs"] == 2
        assert payload["failures"] == []

        status, headers, body = http_call(server.port, "GET",
                                          f"/sweeps/{job_id}/result")
        assert status == 200
        assert headers["ETag"] == f'"{job_id}"'
        assert "immutable" in headers["Cache-Control"]
        document = json.loads(body)
        assert set(document["results"]) == {"excel", "vlc"}
        assert document["metadata"] == {"duration_s": 0.4, "iterations": 1}

    def test_result_bytes_identical_to_cli_suite_json(self, server,
                                                      tmp_path):
        path = tmp_path / "suite.json"
        lines = []
        code = main(["suite", "--apps", "excel,vlc", "--duration", "0.4",
                     "--iterations", "1", "--json", str(path)],
                    out=lines.append)
        assert code == 0
        status, _, body = http_call(server.port, "POST", "/sweeps", SWEEP)
        job_id = json.loads(body)["id"]
        wait_job(server.service, job_id)
        status, _, body = http_call(server.port, "GET",
                                    f"/sweeps/{job_id}/result")
        assert status == 200
        assert body == path.read_bytes()

    def test_duplicate_submission_dedups_in_flight(self, server):
        status, _, body = http_call(server.port, "POST", "/sweeps", SWEEP)
        first = json.loads(body)
        status, _, body = http_call(server.port, "POST", "/sweeps", SWEEP)
        second = json.loads(body)
        assert status == 200
        assert second["deduplicated"] is True
        assert second["id"] == first["id"]

    def test_pending_result_answers_202_and_unknown_404(self):
        from repro.service.jobs import SweepJob

        service = SweepService()
        try:
            # A job parked in the store without ever being submitted
            # to the runner stays deterministically queued.
            sweep = SweepRequest.from_payload(SWEEP)
            spans, specs = sweep.build()
            digest = "ab" * 32
            service.store.add(SweepJob(sweep, digest, spans, specs,
                                       executor=None, backend="serial"))
            response = service.dispatch(
                make_request("GET", f"/sweeps/{digest}/result"))
            assert response.status == 202
            assert json.loads(response.body)["state"] == "queued"
            response = service.dispatch(
                make_request("GET", "/sweeps/" + "0" * 64))
            assert response.status == 404
        finally:
            service.close()

    def test_conditional_get_revalidates_with_304(self, server):
        status, _, body = http_call(server.port, "POST", "/sweeps", SWEEP)
        job_id = json.loads(body)["id"]
        wait_job(server.service, job_id)
        status, headers, _ = http_call(server.port, "GET",
                                       f"/sweeps/{job_id}/result")
        etag = headers["ETag"]
        status, headers, body = http_call(
            server.port, "GET", f"/sweeps/{job_id}/result",
            headers={"If-None-Match": etag})
        assert status == 304
        assert body == b""
        assert headers["ETag"] == etag

    def test_warm_cache_reads_never_resimulate(self, cache_dir):
        """A fresh service over a warmed cache serves the same result
        with zero simulations (verified by executor call counting)."""
        warm = SweepService(cache=cache_dir)
        try:
            response = warm.dispatch(
                make_request("POST", "/sweeps", SWEEP))
            job_id = json.loads(response.body)["id"]
            job = wait_job(warm, job_id)
            assert job.state == "done"
            assert job.executor.executed == 0
            status = json.loads(warm.dispatch(
                make_request("GET", f"/sweeps/{job_id}")).body)
            assert status["executed"] == 0
        finally:
            warm.close()

    def test_frontiers_bytes_match_committed_goldens(self, server):
        committed = json.loads(DSE_PATH.read_text())["frontiers"]
        status, headers, body = http_call(server.port, "GET",
                                          "/frontiers/excel")
        assert status == 200
        assert body == canonical_json_bytes(committed["excel"])
        etag = headers["ETag"]
        status, _, _ = http_call(server.port, "GET", "/frontiers/excel",
                                 headers={"If-None-Match": etag})
        assert status == 304
        status, _, body = http_call(server.port, "GET", "/frontiers")
        assert json.loads(body) == committed

    def test_goldens_table_serves_committed_fingerprints(self, server):
        status, _, body = http_call(server.port, "GET",
                                    "/tables/goldens/excel")
        assert status == 200
        assert "c04-smt" in json.loads(body)
        status, _, _ = http_call(server.port, "GET",
                                 "/tables/goldens/minesweeper")
        assert status == 404

    def test_index_and_health(self, server):
        status, _, body = http_call(server.port, "GET", "/")
        assert status == 200
        assert "POST /sweeps" in json.loads(body)["endpoints"]
        status, _, body = http_call(server.port, "GET", "/healthz")
        assert json.loads(body)["state"] == "running"

    def test_unknown_route_404_and_wrong_method_405(self, server):
        status, _, _ = http_call(server.port, "GET", "/nope")
        assert status == 404
        status, _, _ = http_call(server.port, "DELETE", "/sweeps")
        assert status == 405
        status, _, _ = http_call(server.port, "GET", "/shutdown")
        assert status == 405

    def test_concurrent_goldens_update_conflicts_with_409(self, server):
        service = server.service
        assert service.tables.mutation_lock.acquire(blocking=False)
        try:
            status, _, body = http_call(server.port, "POST", "/goldens",
                                        {"apps": ["excel"]})
            assert status == 409
            assert "in progress" in json.loads(body)["error"]
        finally:
            service.tables.mutation_lock.release()

    def test_goldens_update_writes_file_and_refreshes_etag(self, tmp_path):
        golden = tmp_path / "goldens.json"
        service = SweepService(golden_path=golden, dse_path=DSE_PATH)
        try:
            response = service.dispatch(
                make_request("GET", "/tables/goldens"))
            assert response.status == 404
            response = service.dispatch(
                make_request("POST", "/goldens", {"apps": ["excel"]}))
            assert response.status == 200
            assert json.loads(response.body)["updated"] == ["excel"]
            assert golden.exists()
            response = service.dispatch(
                make_request("GET", "/tables/goldens/excel"))
            assert response.status == 200
            assert "c04-smt" in json.loads(response.body)
        finally:
            service.close()


class TestGracefulShutdown:
    def test_drain_completes_inflight_then_stops(self, tmp_path):
        service = SweepService(cache=tmp_path / "cache")
        server = ServiceServer(service, port=0)
        thread = threading.Thread(target=server.run, daemon=True)
        thread.start()
        assert server.wait_ready(15)

        # A cold multi-second sweep keeps the drain window comfortably
        # wider than the 503 probe below — a sub-second job can finish
        # (and stop the server) before the probe even connects.
        inflight = dict(SWEEP, duration_s=4.0)
        status, _, body = http_call(server.port, "POST", "/sweeps",
                                    inflight)
        assert status == 202
        job_id = json.loads(body)["id"]

        status, _, body = http_call(server.port, "POST", "/shutdown")
        assert status == 202
        assert json.loads(body)["state"] in ("draining", "stopped")

        # New submissions are refused while draining / stopped...
        different = dict(SWEEP, iterations=2)
        status, _, body = http_call(server.port, "POST", "/sweeps",
                                    different)
        assert status == 503
        assert "draining" in json.loads(body)["error"]

        # ...but the in-flight sweep runs to completion before the
        # server exits.
        thread.join(timeout=120)
        assert not thread.is_alive()
        assert service.state == "stopped"
        job = service.store.find(job_id)
        assert job.state == "done"
        assert job.result_bytes is not None
        service.close()


class TestExecutorReResolution:
    """PR-7 regression: the auto-mode clamp is decided per submission,
    not once at daemon startup."""

    def test_backend_tracks_cpu_count_across_submissions(self, tmp_path,
                                                         monkeypatch):
        service = SweepService(jobs=0, cache=tmp_path / "cache")
        try:
            monkeypatch.setattr("repro.harness.supervisor.default_jobs",
                                lambda: 1)
            response = service.dispatch(make_request(
                "POST", "/sweeps",
                {"apps": ["excel"], "duration_s": 0.3, "iterations": 1}))
            assert json.loads(response.body)["backend"] == "serial"

            # The daemon "gains CPUs" between submissions: the next
            # sweep must pick a pool without a restart.
            monkeypatch.setattr("repro.harness.supervisor.default_jobs",
                                lambda: 8)
            response = service.dispatch(make_request(
                "POST", "/sweeps",
                {"apps": ["vlc"], "duration_s": 0.3, "iterations": 2}))
            payload = json.loads(response.body)
            assert payload["backend"] == "pool-2"
            job = wait_job(service, payload["id"])
            assert job.state == "done"
        finally:
            service.close()


class _Gate:
    """Chaos hook that parks every dispatched job until released."""

    def __init__(self):
        self.release = threading.Event()
        self.blocked = threading.Event()

    def __call__(self, job, worker):
        self.blocked.set()
        self.release.wait(60)


class TestAdmissionControl:
    def test_queue_cap_answers_429_with_retry_after(self, tmp_path):
        service = SweepService(cache=tmp_path / "cache", job_workers=1,
                               max_queue=1)
        gate = _Gate()
        service.runner.chaos = gate
        try:
            response = service.dispatch(make_request(
                "POST", "/sweeps", dict(SWEEP, duration_s=0.31)))
            assert response.status == 202
            assert gate.blocked.wait(15)    # job 1 occupies the worker

            response = service.dispatch(make_request(
                "POST", "/sweeps", dict(SWEEP, duration_s=0.32)))
            assert response.status == 202   # job 2 fills the queue

            response = service.dispatch(make_request(
                "POST", "/sweeps", dict(SWEEP, duration_s=0.33)))
            assert response.status == 429
            assert int(response.headers["Retry-After"]) >= 1
            assert "capacity" in json.loads(response.body)["error"]

            response = service.dispatch(make_request("GET", "/readyz"))
            assert response.status == 503
            assert json.loads(response.body)["ready"] is False
            assert "Retry-After" in response.headers

            # Liveness is not admission: /healthz still answers 200.
            response = service.dispatch(make_request("GET", "/healthz"))
            assert response.status == 200
            health = json.loads(response.body)
            assert health["queue"]["depth"] == 1
            assert health["queue"]["max"] == 1
            assert health["queue"]["rejected"] == 1

            # A duplicate of an admitted sweep dedups instead of 429ing.
            response = service.dispatch(make_request(
                "POST", "/sweeps", dict(SWEEP, duration_s=0.32)))
            assert response.status == 200
            assert json.loads(response.body)["deduplicated"] is True

            gate.release.set()
            deadline = time.monotonic() + 30
            while (service.runner.queue_depth()
                    and time.monotonic() < deadline):
                time.sleep(0.02)
            response = service.dispatch(make_request("GET", "/readyz"))
            assert response.status == 200
            assert json.loads(response.body)["ready"] is True

            # The rejection rolled back cleanly: the same sweep is
            # admittable (not deduped to a ghost) once capacity frees.
            response = service.dispatch(make_request(
                "POST", "/sweeps", dict(SWEEP, duration_s=0.33)))
            assert response.status == 202
            assert json.loads(response.body)["deduplicated"] is False
        finally:
            gate.release.set()
            service.close()

    def test_readyz_refuses_while_draining(self):
        service = SweepService()
        try:
            service.state = "draining"
            response = service.dispatch(make_request("GET", "/readyz"))
            assert response.status == 503
            assert json.loads(response.body)["state"] == "draining"
        finally:
            service.close()


class TestJobEviction:
    def test_done_jobs_evicted_after_ttl(self, tmp_path):
        service = SweepService(cache=tmp_path / "cache", job_ttl_s=0.2)
        try:
            response = service.dispatch(
                make_request("POST", "/sweeps", SWEEP))
            job_id = json.loads(response.body)["id"]
            job = wait_job(service, job_id)
            assert job.state == "done"
            assert service.store.find(job_id) is not None

            time.sleep(0.3)
            assert service.store.find(job_id) is None
            response = service.dispatch(make_request("GET", "/healthz"))
            assert json.loads(response.body)["evicted_jobs"] == 1

            # An evicted sweep resubmits as a fresh job that restores
            # entirely from the result cache — eviction costs memory
            # recall, never re-simulation.
            response = service.dispatch(
                make_request("POST", "/sweeps", SWEEP))
            assert response.status == 202
            assert json.loads(response.body)["deduplicated"] is False
            job = wait_job(service, job_id)
            assert job.executed == 0
            assert job.cache_hits == len(job.specs)
        finally:
            service.close()


class TestDrainDeadline:
    def test_expired_drain_fails_inflight_as_deadline(self, tmp_path):
        service = SweepService(cache=tmp_path / "cache", job_workers=1)
        gate = _Gate()
        service.runner.chaos = gate
        try:
            response = service.dispatch(make_request(
                "POST", "/sweeps", dict(SWEEP, duration_s=0.35)))
            job_id = json.loads(response.body)["id"]
            assert gate.blocked.wait(15)

            response = service.dispatch(make_request(
                "POST", "/shutdown", {"drain_s": 0.3}))
            assert response.status == 202
            assert json.loads(response.body)["drain_s"] == 0.3

            deadline = time.monotonic() + 15
            while service.state != "stopped" \
                    and time.monotonic() < deadline:
                time.sleep(0.02)
            assert service.state == "stopped"

            job = service.store.find(job_id)
            assert job.state == "failed"
            assert [f.kind for f in job.failures] == ["deadline"]
            # The stream terminates instead of hanging on the wedge.
            events, exhausted = job.wait_events(0, timeout=1.0)
            assert events[-1]["event"] == "failed"
            assert exhausted
        finally:
            gate.release.set()
            service.close()

    def test_invalid_drain_deadline_rejected(self):
        service = SweepService()
        try:
            response = service.dispatch(make_request(
                "POST", "/shutdown", {"drain_s": -1}))
            assert response.status == 400
            assert service.state == "running"
        finally:
            service.close()


class TestCircuitBreaker:
    def test_breaker_unit_lifecycle(self):
        from repro.service import CircuitBreaker

        breaker = CircuitBreaker(threshold=2, cooldown_s=60.0)
        assert breaker.state() == "closed" and not breaker.degraded()
        breaker.record_crash()
        assert breaker.state() == "closed"
        breaker.record_crash()
        assert breaker.state() == "open" and breaker.degraded()
        breaker.record_ok()
        assert breaker.state() == "closed" and not breaker.degraded()

        fast = CircuitBreaker(threshold=1, cooldown_s=0.05)
        fast.record_crash()
        assert fast.degraded()
        time.sleep(0.1)
        assert fast.state() == "half-open" and not fast.degraded()
        fast.record_crash()     # half-open probe failed: re-open
        assert fast.degraded()

    def test_repeated_crash_quarantines_degrade_to_serial(self, tmp_path):
        service = SweepService(jobs=2, cache=tmp_path / "cache",
                               breaker_threshold=1,
                               breaker_cooldown_s=60.0)
        try:
            crashing = {"apps": ["chrome"], "duration_s": 0.5,
                        "iterations": 1, "fault": "worker-crash"}
            response = service.dispatch(
                make_request("POST", "/sweeps", crashing))
            payload = json.loads(response.body)
            assert payload["backend"].startswith("pool")
            job = wait_job(service, payload["id"])
            assert [f.kind for f in job.failures] == ["crash"]

            deadline = time.monotonic() + 10
            while service.breaker.state() != "open" \
                    and time.monotonic() < deadline:
                time.sleep(0.02)
            assert service.breaker.state() == "open"

            response = service.dispatch(
                make_request("POST", "/sweeps", SWEEP))
            assert json.loads(response.body)["backend"] == "serial"
            response = service.dispatch(make_request("GET", "/healthz"))
            assert json.loads(response.body)["circuit"]["state"] == "open"

            # A healthy outcome closes the breaker; the pool returns.
            service.breaker.record_ok()
            response = service.dispatch(make_request(
                "POST", "/sweeps", dict(SWEEP, duration_s=0.45)))
            assert json.loads(
                response.body)["backend"].startswith("pool")
        finally:
            service.close()


class TestLedgerRecovery:
    def test_finished_job_restored_without_resimulation(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        first = SweepService(ledger=ledger, cache=tmp_path / "cache")
        try:
            response = first.dispatch(
                make_request("POST", "/sweeps", SWEEP))
            job_id = json.loads(response.body)["id"]
            job = wait_job(first, job_id)
            assert job.state == "done" and job.executed > 0
            original = job.result_bytes
        finally:
            first.close()

        restarted = SweepService(ledger=ledger, cache=tmp_path / "cache")
        try:
            job = restarted.store.find(job_id)
            assert job is not None and job.recovered == "finished"
            assert job.wait_done(120)
            assert job.state == "done"
            assert job.executed == 0
            assert job.cache_hits == len(job.specs)
            assert job.result_bytes == original
            assert job.etag() == f'"{job_id}"'
            response = restarted.dispatch(
                make_request("GET", "/healthz"))
            assert json.loads(response.body)["recovered"] == {
                "finished": 1, "interrupted": 0}
        finally:
            restarted.close()

    def test_interrupted_job_reenqueued_and_completed(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        request_payload = SweepRequest.from_payload(SWEEP).to_payload()
        lines = [
            {"format": "repro-job-ledger-v1"},
            {"event": "submitted", "id": "ab" * 32,
             "request": request_payload},
            {"event": "started", "id": "ab" * 32},
        ]
        ledger.write_text("".join(json.dumps(line) + "\n"
                                  for line in lines))
        service = SweepService(ledger=ledger, cache=tmp_path / "cache")
        try:
            jobs = service.store.all()
            assert len(jobs) == 1
            job = jobs[0]
            assert job.recovered == "interrupted"
            assert job.wait_done(120)
            assert job.state == "done" and job.failures == []
            assert job.result_bytes is not None
            response = service.dispatch(make_request("GET", "/healthz"))
            assert json.loads(response.body)["recovered"] == {
                "finished": 0, "interrupted": 1}
        finally:
            service.close()

    def test_failed_jobs_stay_failed_across_restart(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        request_payload = SweepRequest.from_payload(SWEEP).to_payload()
        lines = [
            {"format": "repro-job-ledger-v1"},
            {"event": "submitted", "id": "cd" * 32,
             "request": request_payload},
            {"event": "failed", "id": "cd" * 32, "error": "boom"},
        ]
        ledger.write_text("".join(json.dumps(line) + "\n"
                                  for line in lines))
        service = SweepService(ledger=ledger, cache=tmp_path / "cache")
        try:
            assert service.store.all() == []
        finally:
            service.close()

    def test_ledger_implies_cache(self, tmp_path):
        service = SweepService(ledger=tmp_path / "jobs.jsonl")
        try:
            assert service.cache_dir == str(tmp_path / "jobs.jsonl") \
                + ".cache"
        finally:
            service.close()


class TestServeCli:
    def test_serve_verb_serves_and_shuts_down(self):
        lines = []
        thread = threading.Thread(
            target=main, args=(["serve", "--port", "0"],),
            kwargs={"out": lines.append}, daemon=True)
        thread.start()
        base = None
        deadline = time.monotonic() + 15
        while base is None and time.monotonic() < deadline:
            base = next((line for line in list(lines)
                         if line.startswith("serving on ")), None)
            time.sleep(0.05)
        assert base is not None
        port = int(base.rsplit(":", 1)[1])
        status = None
        while status is None and time.monotonic() < deadline:
            try:
                status, _, body = http_call(port, "GET", "/healthz")
            except (OSError, http.client.HTTPException):
                time.sleep(0.1)
        assert status == 200
        status, _, _ = http_call(port, "POST", "/shutdown")
        assert status == 202
        thread.join(timeout=30)
        assert not thread.is_alive()
        text = "\n".join(lines)
        assert "GET /sweeps/{id}/result" in text
        assert "service stopped" in text
