"""Property-based proof of the service's dedup/identity guarantees.

The API's correctness claim: for *any* ordering of sweep submissions —
duplicates, interleavings, repeats across a service restart — every
result payload is byte-identical to what a direct ``run_suite`` of the
same specs persists, and the content-addressed ``ETag`` never moves.
Hypothesis draws arbitrary submission sequences over a small candidate
pool; expected bytes are memoized per candidate from an *independent*
harness run (its own cache), so a payload bug in the service cannot
cancel out.
"""

import json
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.cache import ResultCache
from repro.harness.suite import run_suite
from repro.reporting.payloads import canonical_json_bytes, suite_payload
from repro.service import SweepService
from repro.service.http import HttpRequest
from repro.sim import SECOND

#: The candidate pool: distinct sweeps small enough that Hypothesis
#: examples stay cheap after the first (cached) simulation of each.
CANDIDATES = (
    {"apps": ["excel"], "duration_s": 0.25, "iterations": 1},
    {"apps": ["vlc"], "duration_s": 0.25, "iterations": 1},
    {"apps": ["excel", "vlc"], "duration_s": 0.25, "iterations": 1},
)

#: Module-level state (not function fixtures) keeps Hypothesis'
#: health checks quiet and amortizes simulations across examples.
_SERVICE_CACHE = tempfile.mkdtemp(prefix="svc-prop-cache-")
_EXPECTED_CACHE = tempfile.mkdtemp(prefix="svc-prop-expected-")
_SERVICE = None
_EXPECTED = {}
_ETAGS = {}


def service():
    global _SERVICE
    if _SERVICE is None:
        _SERVICE = SweepService(cache=_SERVICE_CACHE)
    return _SERVICE


def request(method, path, body=None):
    payload = json.dumps(body).encode("utf-8") if body is not None else b""
    return HttpRequest(method=method, target=path, path=path, query={},
                       headers={}, body=payload)


def expected_bytes(index):
    """What ``repro suite --json`` would persist for this candidate —
    computed straight through the harness, no service involved."""
    if index not in _EXPECTED:
        candidate = CANDIDATES[index]
        suite = run_suite(
            names=tuple(candidate["apps"]),
            duration_us=int(candidate["duration_s"] * SECOND),
            iterations=candidate["iterations"],
            cache=ResultCache(_EXPECTED_CACHE))
        _EXPECTED[index] = canonical_json_bytes(suite_payload(
            suite, metadata={"duration_s": candidate["duration_s"],
                             "iterations": candidate["iterations"]}))
    return _EXPECTED[index]


def submit_and_fetch(svc, index):
    """Submit candidate ``index``; returns ``(etag, body)`` once done."""
    response = svc.dispatch(request("POST", "/sweeps", CANDIDATES[index]))
    assert response.status in (200, 202)
    job_id = json.loads(response.body)["id"]
    job = svc.store.find(job_id)
    assert job is not None and job.wait_done(180)
    response = svc.dispatch(request("GET", f"/sweeps/{job_id}/result"))
    assert response.status == 200
    return response.headers["ETag"], response.body


@settings(max_examples=5, deadline=None)
@given(ordering=st.lists(st.sampled_from(range(len(CANDIDATES))),
                         min_size=1, max_size=6))
def test_any_submission_ordering_yields_cli_identical_payloads(ordering):
    svc = service()
    submissions = {}
    # Interleave all submissions first (duplicates dedup in flight),
    # then collect — results must not depend on arrival order.
    for index in ordering:
        response = svc.dispatch(
            request("POST", "/sweeps", CANDIDATES[index]))
        assert response.status in (200, 202)
        payload = json.loads(response.body)
        if index in submissions:
            # Same candidate resubmitted: same job, same digest.
            assert payload["id"] == submissions[index]
        submissions[index] = payload["id"]
    for index in set(ordering):
        etag, body = submit_and_fetch(svc, index)
        assert body == expected_bytes(index)
        assert etag == f'"{submissions[index]}"'
        previous = _ETAGS.setdefault(index, etag)
        assert etag == previous


def test_etag_and_payload_stable_across_service_restart():
    """A fresh service over the same cache reproduces every payload and
    ETag without one new simulation (the dedup/cache contract)."""
    for index in range(len(CANDIDATES)):
        submit_and_fetch(service(), index)     # ensure cache is warm
    restarted = SweepService(cache=_SERVICE_CACHE)
    try:
        for index in range(len(CANDIDATES)):
            etag, body = submit_and_fetch(restarted, index)
            assert body == expected_bytes(index)
            assert etag == _ETAGS.get(index, etag)
            job = restarted.store.find(etag.strip('"'))
            assert job.executor.executed == 0
    finally:
        restarted.close()
