"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


@pytest.fixture
def env():
    return Environment()


class TestEnvironmentClock:
    def test_time_starts_at_zero(self, env):
        assert env.now == 0

    def test_initial_time_respected(self):
        assert Environment(initial_time=500).now == 500

    def test_timeout_advances_clock(self, env):
        env.timeout(250)
        env.run()
        assert env.now == 250

    def test_run_until_caps_clock(self, env):
        env.timeout(1000)
        env.run(until=400)
        assert env.now == 400

    def test_run_until_is_inclusive_of_events_at_bound(self, env):
        fired = []
        event = env.timeout(400)
        event.callbacks.append(lambda e: fired.append(env.now))
        env.run(until=400)
        assert fired == [400]

    def test_run_until_past_is_rejected(self, env):
        env.timeout(10)
        env.run()
        with pytest.raises(ValueError):
            env.run(until=5)

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_peek_returns_next_event_time(self, env):
        env.timeout(70)
        env.timeout(30)
        assert env.peek() == 30

    def test_peek_empty_queue(self, env):
        assert env.peek() is None

    def test_step_on_empty_queue_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()


class TestEvents:
    def test_succeed_delivers_value(self, env):
        event = env.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed(42)
        env.run()
        assert seen == [42]

    def test_double_trigger_rejected(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_timeout_carries_value(self, env):
        timeout = Timeout(env, 5, value="payload")
        env.run()
        assert timeout.value == "payload"

    def test_events_fire_in_time_order(self, env):
        order = []
        for delay in (30, 10, 20):
            env.timeout(delay).callbacks.append(
                lambda e, d=delay: order.append(d))
        env.run()
        assert order == [10, 20, 30]

    def test_same_time_events_fire_fifo(self, env):
        order = []
        for tag in range(5):
            env.timeout(10).callbacks.append(
                lambda e, t=tag: order.append(t))
        env.run()
        assert order == [0, 1, 2, 3, 4]


class TestProcesses:
    def test_process_runs_to_completion(self, env):
        log = []

        def proc():
            log.append(env.now)
            yield env.timeout(100)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [0, 100]

    def test_process_return_value_is_event_value(self, env):
        def proc():
            yield env.timeout(1)
            return "done"

        process = env.process(proc())
        env.run()
        assert process.value == "done"

    def test_run_until_process(self, env):
        def proc():
            yield env.timeout(42)
            return "answer"

        process = env.process(proc())
        assert env.run(until=process) == "answer"
        assert env.now == 42

    def test_process_waits_on_another_process(self, env):
        def child():
            yield env.timeout(10)
            return 7

        def parent():
            value = yield env.process(child())
            return value * 2

        parent_proc = env.process(parent())
        env.run()
        assert parent_proc.value == 14

    def test_yielding_non_event_raises(self, env):
        def proc():
            yield "junk"

        env.process(proc())
        with pytest.raises(SimulationError):
            env.run()

    def test_exception_in_process_propagates(self, env):
        def proc():
            yield env.timeout(1)
            raise RuntimeError("boom")

        env.process(proc())
        with pytest.raises(RuntimeError, match="boom"):
            env.run()

    def test_yield_already_processed_event_resumes(self, env):
        event = env.event()
        event.succeed("early")

        def proc():
            yield env.timeout(10)  # event processes meanwhile
            value = yield event
            return value

        process = env.process(proc())
        env.run()
        assert process.value == "early"

    def test_interrupt_delivers_cause(self, env):
        causes = []

        def victim():
            try:
                yield env.timeout(1000)
            except Interrupt as interrupt:
                causes.append((env.now, interrupt.cause))

        def attacker(target):
            yield env.timeout(50)
            target.interrupt(cause="preempt")

        target = env.process(victim())
        env.process(attacker(target))
        env.run()
        # Delivered at interrupt time, not when the timeout would fire.
        assert causes == [(50, "preempt")]

    def test_interrupt_after_termination_raises(self, env):
        def quick():
            yield env.timeout(1)

        process = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_stop_simulation_from_process(self, env):
        def proc():
            yield env.timeout(10)
            env.stop("halted")
            yield env.timeout(10)  # pragma: no cover

        env.process(proc())
        assert env.run() == "halted"
        assert env.now == 10


class TestCompositeEvents:
    def test_any_of_fires_on_first(self, env):
        def proc():
            first = yield env.any_of([env.timeout(30, "slow"),
                                      env.timeout(10, "fast")])
            return sorted(first.values())

        process = env.process(proc())
        env.run()
        assert process.value == ["fast"]
        assert env.now == 30  # remaining timeout still drains the queue

    def test_all_of_waits_for_every_event(self, env):
        def proc():
            results = yield env.all_of([env.timeout(30, "a"),
                                        env.timeout(10, "b")])
            return sorted(results.values())

        process = env.process(proc())
        env.run()
        assert process.value == ["a", "b"]

    def test_any_of_empty_fires_immediately(self, env):
        def proc():
            value = yield env.any_of([])
            return value

        process = env.process(proc())
        env.run()
        assert process.value == {}

    def test_all_of_with_pretriggered_events(self, env):
        done = env.event()
        done.succeed("x")

        def proc():
            yield env.timeout(5)
            results = yield env.all_of([done])
            return list(results.values())

        process = env.process(proc())
        env.run()
        assert process.value == ["x"]


class TestDeterminism:
    def test_identical_runs_produce_identical_logs(self):
        def build_and_run():
            env = Environment()
            log = []

            def pinger(delay, tag):
                while env.now < 500:
                    yield env.timeout(delay)
                    log.append((env.now, tag))

            env.process(pinger(7, "a"))
            env.process(pinger(11, "b"))
            env.process(pinger(13, "c"))
            env.run(until=500)
            return log

        assert build_and_run() == build_and_run()
