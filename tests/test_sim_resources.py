"""Unit tests for Resource and Store primitives."""

import pytest

from repro.sim import Environment, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grant_within_capacity_is_immediate(self, env):
        resource = Resource(env, capacity=2)
        first, second = resource.request(), resource.request()
        assert first.triggered and second.triggered
        assert resource.count == 2

    def test_requests_beyond_capacity_queue(self, env):
        resource = Resource(env, capacity=1)
        held = resource.request()
        waiting = resource.request()
        assert held.triggered and not waiting.triggered
        resource.release(held)
        assert waiting.triggered

    def test_fifo_granting(self, env):
        resource = Resource(env, capacity=1)
        held = resource.request()
        queue = [resource.request() for _ in range(3)]
        resource.release(held)
        assert queue[0].triggered
        assert not queue[1].triggered

    def test_release_of_non_holder_raises(self, env):
        resource = Resource(env, capacity=1)
        resource.request()
        with pytest.raises(ValueError):
            resource.release(env.event())

    def test_serialized_usage_from_processes(self, env):
        resource = Resource(env, capacity=1)
        spans = []

        def user(hold):
            request = resource.request()
            yield request
            start = env.now
            yield env.timeout(hold)
            spans.append((start, env.now))
            resource.release(request)

        env.process(user(10))
        env.process(user(10))
        env.run()
        # The two holds must not overlap.
        (a_start, a_stop), (b_start, b_stop) = sorted(spans)
        assert a_stop <= b_start


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        store.put("item")
        got = store.get()
        assert got.triggered and got.value == "item"

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        got = store.get()
        assert not got.triggered
        store.put(99)
        assert got.value == 99

    def test_fifo_ordering(self, env):
        store = Store(env)
        for value in range(5):
            store.put(value)
        values = [store.get().value for _ in range(5)]
        assert values == [0, 1, 2, 3, 4]

    def test_bounded_put_blocks(self, env):
        store = Store(env, capacity=1)
        first = store.put("a")
        second = store.put("b")
        assert first.triggered and not second.triggered
        store.get()
        assert second.triggered

    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_len_reflects_buffered_items(self, env):
        store = Store(env, capacity=10)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        store.get()
        assert len(store) == 1

    def test_producer_consumer_pipeline(self, env):
        store = Store(env, capacity=2)
        consumed = []

        def producer():
            for value in range(6):
                yield store.put(value)
                yield env.timeout(1)

        def consumer():
            for _ in range(6):
                item = yield store.get()
                consumed.append((env.now, item))
                yield env.timeout(3)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert [item for _, item in consumed] == list(range(6))
        # Consumer is the bottleneck: last item arrives around 5*3.
        assert consumed[-1][0] >= 15
