"""Tests for the static concurrency analyzer (shadow build + lock order)."""

import pytest

from repro.analysis.static import (
    analyze_app,
    analyze_work_span,
    build_lock_order,
    check_bound,
    extract_structure,
)
from repro.analysis.static.shadow import ShadowKernel
from repro.apps import SUITE
from repro.apps.base import AppModel
from repro.hardware import paper_machine
from repro.os.sync import Lock
from repro.sim import MS


class _FixtureApp(AppModel):
    """Base for test-only models: build body supplied per subclass."""

    name = "test-fixture"


class DeadlockProneApp(_FixtureApp):
    """Classic ABBA inversion: t1 takes A then B, t2 takes B then A."""

    name = "test-deadlock"

    def build(self, rt):
        process = rt.spawn_process("deadlock.exe")
        lock_a = Lock(rt.kernel, name="lock-a")
        lock_b = Lock(rt.kernel, name="lock-b")

        def forward(ctx):
            yield ctx.wait(lock_a.acquire(ctx.thread))
            yield ctx.cpu(MS)
            yield ctx.wait(lock_b.acquire(ctx.thread))
            yield ctx.cpu(MS)
            lock_b.release(lock_b.owner)
            lock_a.release(lock_a.owner)

        def backward(ctx):
            yield ctx.wait(lock_b.acquire(ctx.thread))
            yield ctx.cpu(MS)
            yield ctx.wait(lock_a.acquire(ctx.thread))
            yield ctx.cpu(MS)
            lock_a.release(lock_a.owner)
            lock_b.release(lock_b.owner)

        process.spawn_thread(forward, name="forward")
        process.spawn_thread(backward, name="backward")


class OrderedLocksApp(_FixtureApp):
    """Both threads take A then B: edges but no cycle."""

    name = "test-ordered"

    def build(self, rt):
        process = rt.spawn_process("ordered.exe")
        lock_a = Lock(rt.kernel, name="lock-a")
        lock_b = Lock(rt.kernel, name="lock-b")

        def body(ctx):
            yield ctx.wait(lock_a.acquire(ctx.thread))
            yield ctx.wait(lock_b.acquire(ctx.thread))
            yield ctx.cpu(MS)
            lock_b.release(lock_b.owner)
            lock_a.release(lock_a.owner)

        process.spawn_thread(body, name="first")
        process.spawn_thread(body, name="second")


class RelockApp(_FixtureApp):
    """A thread re-acquires a non-reentrant lock it already holds."""

    name = "test-relock"

    def build(self, rt):
        process = rt.spawn_process("relock.exe")
        lock = Lock(rt.kernel, name="guard")

        def body(ctx):
            yield ctx.wait(lock.acquire(ctx.thread))
            yield ctx.wait(lock.acquire(ctx.thread))
            yield ctx.cpu(MS)

        process.spawn_thread(body, name="worker")


class LeakyLockApp(_FixtureApp):
    """A thread terminates while still holding a lock."""

    name = "test-leaky"

    def build(self, rt):
        process = rt.spawn_process("leaky.exe")
        lock = Lock(rt.kernel, name="held-forever")

        def body(ctx):
            yield ctx.wait(lock.acquire(ctx.thread))
            yield ctx.cpu(MS)

        process.spawn_thread(body, name="worker")


class TestShadowExtraction:
    def test_no_simulation_clock_advance(self):
        structure = extract_structure("chrome")
        assert structure.duration_us > 0
        # the harness itself asserts env.now == 0; double-check here
        kernel = ShadowKernel(paper_machine())
        assert kernel.env.now == 0

    def test_structure_is_complete_for_shipped_apps(self):
        structure = extract_structure("vlc")
        assert structure.complete
        assert not structure.build_error
        assert structure.processes == ["vlc.exe"]
        assert len(structure.threads) >= 5

    def test_dynamic_spawns_recorded(self):
        structure = extract_structure("chrome")
        assert structure.dynamic_spawns
        dynamic = [t for t in structure.threads if t.dynamic]
        assert dynamic and all(t.spawn_site for t in dynamic)

    def test_sync_inventory_named_and_sited(self):
        structure = extract_structure("vlc")
        assert structure.sync
        assert all(s.name for s in structure.sync)
        assert all(s.site for s in structure.sync)

    def test_extraction_is_deterministic(self):
        first = extract_structure("firefox", seed=7)
        second = extract_structure("firefox", seed=7)
        assert len(first.threads) == len(second.threads)
        assert [t.cpu_us for t in first.threads] == \
            [t.cpu_us for t in second.threads]
        assert [s.name for s in first.sync] == \
            [s.name for s in second.sync]

    def test_rejects_non_app(self):
        with pytest.raises(TypeError):
            extract_structure(42)


class TestLockOrder:
    def test_injected_inversion_detected_with_cycle_named(self):
        structure = extract_structure(DeadlockProneApp())
        graph, findings = build_lock_order(structure)
        assert graph.cycles == [["lock-a", "lock-b"]]
        cycle_findings = [f for f in findings if f.code == "deadlock-cycle"]
        assert len(cycle_findings) == 1
        finding = cycle_findings[0]
        assert finding.severity == "error"
        assert "lock-a -> lock-b -> lock-a" in finding.message
        assert "'forward'" in finding.message
        assert "'backward'" in finding.message

    def test_ordered_locks_produce_no_cycle(self):
        structure = extract_structure(OrderedLocksApp())
        graph, findings = build_lock_order(structure)
        assert ("lock-a", "lock-b") in graph.edge_pairs
        assert graph.cycles == []
        assert not [f for f in findings if f.code == "deadlock-cycle"]

    def test_relock_flagged_as_self_deadlock(self):
        structure = extract_structure(RelockApp())
        _graph, findings = build_lock_order(structure)
        relocks = [f for f in findings if f.code == "lock-relock"]
        assert len(relocks) == 1
        assert "'guard'" in relocks[0].message
        assert relocks[0].severity == "error"

    def test_leaked_lock_flagged(self):
        structure = extract_structure(LeakyLockApp())
        _graph, findings = build_lock_order(structure)
        leaks = [f for f in findings if f.code == "acquire-without-release"]
        assert len(leaks) == 1
        assert "'held-forever'" in leaks[0].message

    def test_shipped_models_have_no_deadlock_cycles(self):
        for name in SUITE:
            structure = extract_structure(name)
            graph, findings = build_lock_order(structure)
            assert graph.cycles == [], name
            assert not findings, (name, findings)


class TestWorkSpan:
    def test_bound_respects_machine_and_width(self):
        structure = extract_structure("wineth")
        result = analyze_work_span(structure)
        assert result.width == 3
        assert result.tlp_bound == 3.0  # narrower than the machine
        assert result.work_us >= result.span_us > 0
        assert result.parallelism >= 1.0
        assert result.critical_thread

    def test_wide_app_bounded_by_machine(self):
        structure = extract_structure("chrome")
        result = analyze_work_span(structure)
        assert result.width > structure.logical_cpus
        assert result.tlp_bound == float(structure.logical_cpus)

    def test_check_bound_passes_and_fails(self):
        result = analyze_work_span(extract_structure("wineth"))
        assert check_bound(result, result.tlp_bound) is None
        error = check_bound(result, result.tlp_bound + 1.0, "c04-smt")
        assert error and "wineth" in error and "c04-smt" in error


class TestAnalyzeApp:
    def test_injected_fault_surfaces_in_findings(self):
        analysis = analyze_app(DeadlockProneApp())
        codes = {f.code for f in analysis.findings}
        assert "deadlock-cycle" in codes
        assert analysis.lock_order.cycles == [["lock-a", "lock-b"]]

    def test_clean_shipped_app_has_no_findings(self):
        analysis = analyze_app("vlc")
        assert analysis.findings == []
        assert analysis.structure.complete
        assert analysis.work_span.tlp_bound > 0
