"""Tests for the AST source lint pass."""

import textwrap

from repro.analysis.static import app_source_paths, lint_file, lint_paths


def _write(tmp_path, source, name="fixture.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


def _codes(findings):
    return sorted(f.code for f in findings)


class TestBlockingCalls:
    def test_bare_ctx_calls_flagged(self, tmp_path):
        path = _write(tmp_path, """
            def body(ctx):
                ctx.sleep(5)
                ctx.cpu(10)
                ctx.wait(None)
                yield ctx.cpu(1)
            """)
        findings = lint_file(path)
        assert _codes(findings) == ["blocking-call-outside-yield"] * 3
        assert all(f.severity == "error" for f in findings)
        assert findings[0].location == "fixture.py:3"

    def test_yielded_calls_clean(self, tmp_path):
        path = _write(tmp_path, """
            def body(ctx):
                yield ctx.sleep(5)
                request = ctx.cpu(10)
                yield request
            """)
        assert lint_file(path) == []


class TestDiscardedAcquire:
    def test_bare_acquire_statement_flagged(self, tmp_path):
        path = _write(tmp_path, """
            def body(ctx, gate):
                gate.acquire()
                yield ctx.cpu(1)
            """)
        findings = lint_file(path)
        assert _codes(findings) == ["discarded-acquire"]
        assert findings[0].severity == "warning"

    def test_yielded_acquire_clean(self, tmp_path):
        path = _write(tmp_path, """
            def body(ctx, gate):
                yield ctx.wait(gate.acquire())
            """)
        assert lint_file(path) == []


class TestLockPairing:
    def test_lock_never_released_flagged(self, tmp_path):
        path = _write(tmp_path, """
            from repro.os.sync import Lock

            def build(kernel, ctx):
                guard = Lock(kernel)
                yield ctx.wait(guard.acquire(1))
            """)
        findings = lint_file(path)
        assert _codes(findings) == ["lock-never-released"]
        assert "'guard'" in findings[0].message

    def test_released_lock_clean(self, tmp_path):
        path = _write(tmp_path, """
            from repro.os.sync import Lock

            def build(kernel, ctx):
                guard = Lock(kernel)
                yield ctx.wait(guard.acquire(1))
                guard.release(1)
            """)
        assert lint_file(path) == []

    def test_semaphores_not_subject_to_pairing(self, tmp_path):
        path = _write(tmp_path, """
            from repro.os.sync import Semaphore

            def build(kernel, ctx):
                gate = Semaphore(kernel)
                yield ctx.wait(gate.acquire())
            """)
        assert lint_file(path) == []


class TestRngAndWallClock:
    def test_global_rng_flagged(self, tmp_path):
        path = _write(tmp_path, """
            import random

            def pick():
                return random.randint(0, 3)
            """)
        findings = lint_file(path)
        assert _codes(findings) == ["unseeded-rng"]

    def test_unseeded_constructor_flagged_seeded_clean(self, tmp_path):
        path = _write(tmp_path, """
            import random

            bad = random.Random()
            good = random.Random(42)
            """)
        findings = lint_file(path)
        assert _codes(findings) == ["unseeded-rng"]
        assert findings[0].location == "fixture.py:4"

    def test_module_alias_tracked(self, tmp_path):
        path = _write(tmp_path, """
            import random as rnd

            def pick():
                return rnd.uniform(0, 1)
            """)
        assert _codes(lint_file(path)) == ["unseeded-rng"]

    def test_from_import_tracked(self, tmp_path):
        path = _write(tmp_path, """
            from random import randint

            def pick():
                return randint(0, 3)
            """)
        assert _codes(lint_file(path)) == ["unseeded-rng"]

    def test_wall_clock_flagged(self, tmp_path):
        path = _write(tmp_path, """
            import time
            from time import perf_counter

            def stamp():
                time.sleep(1)
                return time.time() + perf_counter()
            """)
        findings = lint_file(path)
        assert _codes(findings) == ["wall-clock"] * 3
        assert all(f.severity == "error" for f in findings)

    def test_seeded_stream_clean(self, tmp_path):
        path = _write(tmp_path, """
            import random

            def pick(rt):
                rng = random.Random(rt.seed)
                return rng.randint(0, 3)
            """)
        assert lint_file(path) == []


class TestPaths:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        path = _write(tmp_path, "def broken(:\n")
        findings = lint_file(path)
        assert _codes(findings) == ["syntax-error"]

    def test_directory_expansion(self, tmp_path):
        _write(tmp_path, "import random\nrandom.random()\n", "one.py")
        _write(tmp_path, "x = 1\n", "two.py")
        findings = lint_paths([tmp_path])
        assert _codes(findings) == ["unseeded-rng"]

    def test_shipped_app_sources_are_clean(self):
        assert lint_paths(app_source_paths()) == []
