"""Property tests: static TLP ceiling vs the simulated golden grid.

The invariant from ISSUE 4: for every registered app and every machine
in the golden grid, the static work/span TLP bound is >= the simulated
Eq.-1 TLP.  The simulated side comes from the committed golden
fingerprints (``tests/golden/golden_traces.json``) — no simulation
runs here, so the whole grid stays cheap enough to check exhaustively
on top of the sampled hypothesis pass.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.static import analyze_work_span, extract_structure
from repro.apps import SUITE
from repro.validate.golden import (
    GOLDEN_CONFIGS,
    config_id,
    golden_machine,
    load_goldens,
)

_structures = {}


def _bound(name, cores, smt):
    """Static work/span result, cached per (app, machine) pair."""
    key = (name, cores, smt)
    if key not in _structures:
        _structures[key] = analyze_work_span(
            extract_structure(name, machine=golden_machine(cores, smt)))
    return _structures[key]


@pytest.fixture(scope="module")
def goldens():
    try:
        return load_goldens()
    except FileNotFoundError:
        pytest.skip("no committed golden fingerprints")


def _golden_tlp(goldens, name, cores, smt):
    fingerprint = goldens.get(name, {}).get(config_id(cores, smt))
    if fingerprint is None:
        pytest.skip(f"no golden for {name} on {config_id(cores, smt)}")
    return float.fromhex(fingerprint["tlp"])


class TestStaticBoundDominatesGoldenTlp:
    def test_exhaustive_grid(self, goldens):
        """Every (app, machine) pair in the golden grid, no sampling."""
        violations = []
        for name in SUITE:
            for cores, smt in GOLDEN_CONFIGS:
                result = _bound(name, cores, smt)
                tlp = _golden_tlp(goldens, name, cores, smt)
                if tlp > result.tlp_bound + 1e-9:
                    violations.append(
                        f"{name}[{config_id(cores, smt)}]: "
                        f"TLP {tlp:.4f} > bound {result.tlp_bound:.4f}")
        assert violations == []

    @settings(deadline=None, max_examples=60,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(name=st.sampled_from(sorted(SUITE)),
           config=st.sampled_from(GOLDEN_CONFIGS))
    def test_sampled_pairs(self, goldens, name, config):
        cores, smt = config
        result = _bound(name, cores, smt)
        tlp = _golden_tlp(goldens, name, cores, smt)
        assert tlp <= result.tlp_bound + 1e-9
        assert result.tlp_bound <= golden_machine(cores, smt).logical_cpus

    @settings(deadline=None, max_examples=20)
    @given(name=st.sampled_from(sorted(SUITE)),
           config=st.sampled_from(GOLDEN_CONFIGS))
    def test_bound_is_positive_and_machine_capped(self, name, config):
        cores, smt = config
        result = _bound(name, cores, smt)
        machine = golden_machine(cores, smt)
        assert 0 < result.tlp_bound <= machine.logical_cpus
        assert result.width >= 1
