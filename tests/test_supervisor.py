"""Supervised execution: deadlines, retries, quarantine, checkpoint.

These tests drive :class:`repro.harness.supervisor.SupervisedExecutor`
through every failure mode in the taxonomy and prove the two headline
properties: a failing grid point never takes the sweep down with it,
and a resumed sweep is bit-identical to an uninterrupted one.
"""

import json

import pytest

from repro.harness.cache import ResultCache
from repro.harness.executor import (
    ParallelExecutor,
    SerialExecutor,
    make_spec,
)
from repro.harness.runner import SingleRun
from repro.harness.supervisor import (
    FAILURE_KINDS,
    JOURNAL_FORMAT,
    RunFailure,
    SupervisedExecutor,
    SweepJournal,
    sweep_digest,
)
from repro.sim import SECOND
from repro.validate import InjectedCrash, fingerprint_run

SHORT = SECOND // 2


def spec(name="chrome", seed=0, **overrides):
    return make_spec(name, duration_us=SHORT, seed=seed, **overrides)


class TestConstruction:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            SupervisedExecutor(retries=-1)

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError):
            SupervisedExecutor(deadline_s=0)

    def test_journal_and_resume_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            SupervisedExecutor(journal=tmp_path / "a.jsonl",
                               resume=tmp_path / "b.jsonl")

    def test_journal_implies_cache(self, tmp_path):
        executor = SupervisedExecutor(journal=tmp_path / "sweep.jsonl")
        assert executor.cache is not None


class TestCleanSweep:
    def test_serial_matches_unsupervised(self):
        specs = [spec(seed=s) for s in (0, 1, 2)]
        supervised = SupervisedExecutor().map(specs)
        plain = SerialExecutor().map(specs)
        assert all(isinstance(r, SingleRun) for r in supervised)
        assert [fingerprint_run(r) for r in supervised] == \
            [fingerprint_run(r) for r in plain]

    def test_pool_matches_serial(self):
        specs = [spec(seed=s) for s in range(4)]
        serial = SupervisedExecutor().map(specs)
        pooled = SupervisedExecutor(jobs=2).map(specs)
        assert [fingerprint_run(r) for r in pooled] == \
            [fingerprint_run(r) for r in serial]


class TestQuarantine:
    def test_serial_crash_is_quarantined(self):
        results = SupervisedExecutor().map(
            [spec(seed=0), spec(seed=1, fault="worker-crash")])
        assert isinstance(results[0], SingleRun)
        failure = results[1]
        assert isinstance(failure, RunFailure)
        assert failure.kind == "crash"
        assert failure.attempts == 1
        assert "InjectedCrash" in failure.detail

    def test_invalid_trace_classified(self):
        executor = SupervisedExecutor()
        results = executor.map(
            [spec(seed=0, fault="timestamp-skew", validate=True)])
        assert results[0].kind == "invalid-trace"
        assert executor.failures == [results[0]]

    def test_pool_crash_keeps_remote_traceback(self):
        executor = SupervisedExecutor(jobs=2)
        results = executor.map(
            [spec(seed=0), spec(seed=1, fault="worker-crash")])
        assert isinstance(results[0], SingleRun)
        failure = results[1]
        assert failure.kind == "crash"
        assert "InjectedCrash" in failure.remote_traceback

    def test_deadline_kills_hung_worker(self):
        executor = SupervisedExecutor(jobs=2, deadline_s=1.0)
        results = executor.map(
            [spec(seed=0), spec(seed=1, fault="worker-hang")])
        assert isinstance(results[0], SingleRun)
        assert results[1].kind == "deadline"
        assert "deadline" in results[1].detail

    def test_deadline_forces_killable_worker_even_serial(self):
        # jobs=None would run in-process, which cannot be killed; a
        # deadline must force a one-worker pool.
        executor = SupervisedExecutor(deadline_s=1.0)
        results = executor.map([spec(seed=0, fault="worker-hang")])
        assert results[0].kind == "deadline"

    def test_every_kind_in_taxonomy(self):
        assert FAILURE_KINDS == \
            ("crash", "deadline", "invalid-trace", "cache-corrupt")


class TestRetries:
    def test_flaky_fault_heals_with_retries(self, tmp_path):
        fault = f"flaky-crash:{tmp_path / 'strike'}"
        executor = SupervisedExecutor(retries=2)
        results = executor.map([spec(seed=0, fault=fault)])
        assert isinstance(results[0], SingleRun)
        assert executor.retried == 1
        assert executor.failures == []

    def test_flaky_fault_heals_in_pool(self, tmp_path):
        fault = f"flaky-crash:{tmp_path / 'strike'}"
        executor = SupervisedExecutor(jobs=2, retries=2)
        results = executor.map([spec(seed=0), spec(seed=1, fault=fault)])
        assert all(isinstance(r, SingleRun) for r in results)
        assert executor.retried == 1

    def test_persistent_fault_exhausts_budget(self):
        executor = SupervisedExecutor(retries=2)
        results = executor.map([spec(seed=0, fault="worker-crash")])
        assert results[0].attempts == 3
        assert executor.retried == 2

    def test_backoff_is_deterministic(self):
        a = SupervisedExecutor(retries=3, backoff_s=0.25, seed=7)
        b = SupervisedExecutor(retries=3, backoff_s=0.25, seed=7)
        c = SupervisedExecutor(retries=3, backoff_s=0.25, seed=8)
        delays_a = [a._backoff_delay(4, n) for n in (1, 2, 3)]
        delays_b = [b._backoff_delay(4, n) for n in (1, 2, 3)]
        assert delays_a == delays_b
        assert delays_a != [c._backoff_delay(4, n) for n in (1, 2, 3)]
        # Exponential window with jitter in [0.5, 1.5) of the base.
        for attempt, delay in enumerate(delays_a, start=1):
            base = 0.25 * 2 ** (attempt - 1)
            assert 0.5 * base <= delay < 1.5 * base


class TestCacheCorruption:
    def test_corrupt_entry_deleted_and_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        one = spec(seed=3)
        first = SupervisedExecutor(cache=cache).map([one])[0]
        key = cache.key_for(one)
        path = cache._path(key)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])

        cache2 = ResultCache(tmp_path / "cache")
        executor = SupervisedExecutor(cache=cache2)
        again = executor.map([one])[0]
        assert isinstance(again, SingleRun)
        assert fingerprint_run(again) == fingerprint_run(first)
        assert cache2.corrupt == 1
        # The bad file was deleted, then the recomputed result was
        # stored back under the same key — the entry is healthy again.
        status, _ = cache2.load_classified(key)
        assert status == "hit"
        incident, = executor.incidents
        assert incident.kind == "cache-corrupt"
        assert executor.failures == []  # non-fatal: recomputed

    def test_clean_cache_hit_skips_execution(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        one = spec(seed=3)
        SupervisedExecutor(cache=cache).map([one])
        executor = SupervisedExecutor(cache=cache)
        executor.map([one])
        assert executor.executed == 0


class TestJournal:
    def test_header_and_entries(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        specs = [spec(seed=s) for s in (0, 1)]
        SupervisedExecutor(journal=path).map(specs)
        lines = [json.loads(line) for line in
                 path.read_text().splitlines()]
        assert lines[0]["format"] == JOURNAL_FORMAT
        assert lines[0]["total"] == 2
        statuses = {entry["index"]: entry["status"] for entry in lines[1:]}
        assert statuses == {0: "ok", 1: "ok"}

    def test_failure_recorded(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        SupervisedExecutor(journal=path).map(
            [spec(seed=0, fault="worker-crash")])
        entry = json.loads(path.read_text().splitlines()[-1])
        assert entry["status"] == "failed"
        assert entry["failure"]["kind"] == "crash"

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        SupervisedExecutor(journal=path).map([spec(seed=0)])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"index": 9, "stat')  # killed mid-write
        header, entries = SweepJournal.load(path)
        assert header["total"] == 1
        assert 9 not in entries

    def test_corrupt_interior_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"format": JOURNAL_FORMAT, "digest": "d",
                        "total": 1}) + "\nnot json\n"
            + json.dumps({"index": 0, "key": None, "status": "ok"}) + "\n")
        with pytest.raises(ValueError, match="corrupt"):
            SweepJournal.load(path)

    def test_not_a_journal_rejected(self, tmp_path):
        path = tmp_path / "noise.jsonl"
        path.write_text('{"hello": "world"}\n')
        with pytest.raises(ValueError, match="not a sweep journal"):
            SweepJournal.load(path)


class TestResume:
    def _interrupt_after(self, path, keep):
        """Simulate a kill: keep the header plus ``keep`` run lines,
        and drop the corresponding cache entries for the rest."""
        lines = path.read_text().splitlines()
        kept, dropped_keys = lines[: 1 + keep], []
        for line in lines[1 + keep:]:
            dropped_keys.append(json.loads(line)["key"])
        path.write_text("\n".join(kept) + "\n")
        cache = ResultCache(str(path) + ".cache")
        for key in dropped_keys:
            cache.invalidate(key)

    def test_resume_is_bit_identical(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        specs = [spec(seed=s) for s in range(4)]
        baseline = SupervisedExecutor(journal=path).map(specs)
        self._interrupt_after(path, keep=2)

        executor = SupervisedExecutor(resume=path)
        resumed = executor.map(specs)
        assert executor.resumed == 2
        assert executor.executed == 2
        assert [fingerprint_run(r) for r in resumed] == \
            [fingerprint_run(r) for r in baseline]
        # The journal is now complete again.
        _, entries = SweepJournal.load(path)
        assert sorted(entries) == [0, 1, 2, 3]

    def test_failed_entries_get_a_fresh_chance(self, tmp_path):
        # A one-shot flaky fault quarantines the run on the first
        # sweep; the strike file is consumed, so the resumed sweep
        # re-runs it and it completes clean.
        path = tmp_path / "sweep.jsonl"
        fault = f"flaky-crash:{tmp_path / 'strike'}"
        specs = [spec(seed=0), spec(seed=1, fault=fault)]
        first = SupervisedExecutor(journal=path).map(specs)
        assert isinstance(first[1], RunFailure)

        executor = SupervisedExecutor(resume=path)
        resumed = executor.map(specs)
        assert isinstance(resumed[1], SingleRun)
        assert executor.failures == []

    def test_wrong_journal_refused(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        SupervisedExecutor(journal=path).map([spec(seed=0)])
        with pytest.raises(ValueError, match="different sweep"):
            SupervisedExecutor(resume=path).map([spec(seed=99)])

    def test_digest_covers_order(self):
        assert sweep_digest(["a", "b"]) != sweep_digest(["b", "a"])
        assert sweep_digest([None, "a"]) != sweep_digest(["a", None])


class TestParallelExecutorHardening:
    def test_worker_exception_carries_remote_traceback(self):
        executor = ParallelExecutor(jobs=2)
        with pytest.raises(InjectedCrash) as excinfo:
            executor.map([spec(seed=0, fault="worker-crash"),
                          spec(seed=1)])
        assert "InjectedCrash" in getattr(
            excinfo.value, "remote_traceback", "")
