"""Unit tests for the tracing substrate (records, ETL, session, WPA)."""

import pytest

from repro.sim import Environment
from repro.trace import (
    CPU_USAGE_PRECISE,
    ContextSwitchRecord,
    CpuUsagePreciseTable,
    EtlTrace,
    GpuPacketRecord,
    GpuUtilizationTable,
    TraceSession,
    export_csv,
    load_cpu_csv,
    load_gpu_csv,
)


def make_trace():
    cswitches = [
        ContextSwitchRecord("app.exe", 8, 8001, "main", 0, 0, 10, 50),
        ContextSwitchRecord("app.exe", 8, 8002, "worker", 1, 5, 12, 40),
        ContextSwitchRecord("System", 4, 4001, "tick", 2, 0, 0, 5),
    ]
    packets = [
        GpuPacketRecord("app.exe", 8, "3D", "frame", 0, 2, 30),
        GpuPacketRecord("other.exe", 12, "compute", "kernel", 5, 30, 60),
    ]
    return EtlTrace(0, 100, cswitches=cswitches, gpu_packets=packets,
                    machine_name="testbox")


class TestRecords:
    def test_cswitch_duration_and_wait(self):
        record = ContextSwitchRecord("p", 1, 2, "t", 0, 10, 15, 40)
        assert record.duration == 25
        assert record.wait_time == 5

    def test_cswitch_time_ordering_enforced(self):
        with pytest.raises(ValueError):
            ContextSwitchRecord("p", 1, 2, "t", 0, 10, 5, 40)

    def test_packet_running_and_queue_time(self):
        packet = GpuPacketRecord("p", 1, "3D", "frame", 0, 4, 24)
        assert packet.running_time == 20
        assert packet.queue_time == 4

    def test_packet_time_ordering_enforced(self):
        with pytest.raises(ValueError):
            GpuPacketRecord("p", 1, "3D", "frame", 10, 5, 24)


class TestEtlTrace:
    def test_duration(self):
        assert make_trace().duration == 100

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            EtlTrace(10, 5)

    def test_processes_lists_all_sources(self):
        assert make_trace().processes == ["System", "app.exe", "other.exe"]

    def test_filter_processes(self):
        filtered = make_trace().filter_processes(lambda name: name == "app.exe")
        assert filtered.processes == ["app.exe"]
        assert len(filtered.cswitches) == 2
        assert len(filtered.gpu_packets) == 1
        assert filtered.duration == 100

    def test_save_load_round_trip(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "capture.etl.jsonl"
        trace.save(path)
        loaded = EtlTrace.load(path)
        assert loaded.start_time == trace.start_time
        assert loaded.stop_time == trace.stop_time
        assert loaded.cswitches == trace.cswitches
        assert loaded.gpu_packets == trace.gpu_packets
        assert loaded.machine_name == "testbox"

    def test_load_without_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "mark", "process": "p", "pid": 1, '
                        '"time": 0, "label": "x"}\n')
        with pytest.raises(ValueError):
            EtlTrace.load(path)


class TestTraceSession:
    def test_records_only_while_recording(self):
        env = Environment()
        session = TraceSession(env)
        session.emit_cswitch("p", 1, 2, "t", 0, 0, 0, 5)  # before start
        session.start()
        session.emit_cswitch("p", 1, 2, "t", 0, 0, 0, 5)
        trace = session.stop()
        session.emit_cswitch("p", 1, 2, "t", 0, 0, 0, 5)  # after stop
        assert len(trace.cswitches) == 1

    def test_provider_filtering(self):
        env = Environment()
        session = TraceSession(env, providers={CPU_USAGE_PRECISE})
        session.start()
        session.emit_cswitch("p", 1, 2, "t", 0, 0, 0, 5)
        session.emit_gpu_packet("p", 1, "3D", "frame", 0, 0, 5)
        trace = session.stop()
        assert len(trace.cswitches) == 1
        assert len(trace.gpu_packets) == 0

    def test_unknown_provider_rejected(self):
        with pytest.raises(ValueError):
            TraceSession(Environment(), providers={"bogus"})

    def test_double_start_rejected(self):
        session = TraceSession(Environment())
        session.start()
        with pytest.raises(RuntimeError):
            session.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            TraceSession(Environment()).stop()

    def test_trace_window_tracks_clock(self):
        env = Environment()
        session = TraceSession(env)
        env.timeout(10)
        env.run()
        session.start()
        env.timeout(40)
        env.run()
        trace = session.stop()
        assert trace.start_time == 10
        assert trace.stop_time == 50


class TestWpaTables:
    def test_cpu_table_extraction_sorted_by_switch_in(self):
        table = CpuUsagePreciseTable.from_trace(make_trace())
        switch_ins = [row[6] for row in table.rows]
        assert switch_ins == sorted(switch_ins)

    def test_cpu_table_process_filtering(self):
        table = CpuUsagePreciseTable.from_trace(make_trace())
        intervals = list(table.busy_intervals(processes={"app.exe"}))
        assert len(intervals) == 2
        assert all(isinstance(cpu, int) for cpu, _s, _e in intervals)

    def test_gpu_table_extraction(self):
        table = GpuUtilizationTable.from_trace(make_trace())
        assert table.process_names() == ["app.exe", "other.exe"]
        intervals = list(table.packet_intervals(processes={"app.exe"}))
        assert intervals == [("3D", 2, 30)]

    def test_cpu_csv_round_trip(self, tmp_path):
        table = CpuUsagePreciseTable.from_trace(make_trace())
        path = tmp_path / "cpu.csv"
        export_csv(table, path)
        loaded = load_cpu_csv(path)
        assert loaded.rows == table.rows
        assert loaded.trace_start == table.trace_start
        assert loaded.trace_stop == table.trace_stop

    def test_gpu_csv_round_trip(self, tmp_path):
        table = GpuUtilizationTable.from_trace(make_trace())
        path = tmp_path / "gpu.csv"
        export_csv(table, path)
        loaded = load_gpu_csv(path)
        assert loaded.rows == table.rows

    def test_csv_wrong_schema_rejected(self, tmp_path):
        cpu_table = CpuUsagePreciseTable.from_trace(make_trace())
        path = tmp_path / "cpu.csv"
        export_csv(cpu_table, path)
        with pytest.raises(ValueError):
            load_gpu_csv(path)


class TestMemoizedExtractions:
    def test_busy_events_sorted_and_cached(self):
        table = CpuUsagePreciseTable.from_trace(make_trace())
        events = table.busy_events(processes={"app.exe"})
        assert events == sorted(events)
        assert sum(delta for _t, delta in events) == 0
        # Same process set (any set form) returns the same cached array.
        assert table.busy_events(processes=frozenset({"app.exe"})) is events
        assert table.busy_events() is table.busy_events()

    def test_busy_events_match_busy_intervals(self):
        table = CpuUsagePreciseTable.from_trace(make_trace())
        expected = []
        for _cpu, start, stop in table.busy_intervals():
            expected += [(start, 1), (stop, -1)]
        assert table.busy_events() == sorted(expected)

    def test_intervals_by_cpu_grouped_and_sorted(self):
        table = CpuUsagePreciseTable.from_trace(make_trace())
        by_cpu = table.intervals_by_cpu()
        assert set(by_cpu) == {0, 1, 2}
        assert by_cpu[0] == [(10, 50)]
        assert table.intervals_by_cpu() is by_cpu

    def test_packet_events_and_spans_cached(self):
        table = GpuUtilizationTable.from_trace(make_trace())
        assert table.packet_spans(processes={"app.exe"}) == [(2, 30)]
        events = table.packet_events()
        assert events == [(2, 1), (30, -1), (30, 1), (60, -1)]
        assert table.packet_events() is events

    def test_etl_processes_memoized(self):
        trace = make_trace()
        first = trace.processes
        assert first == ["System", "app.exe", "other.exe"]
        first.append("mutated.exe")          # caller copies are independent
        assert trace.processes == ["System", "app.exe", "other.exe"]
