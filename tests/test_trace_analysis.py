"""Tests for the extended trace analyses (sampled profile, waits)."""

import pytest

from repro.apps import create_app
from repro.harness import run_app_once
from repro.hardware import paper_machine
from repro.sim import SECOND
from repro.trace import (
    CpuUsagePreciseTable,
    GpuUtilizationTable,
    SampledProfile,
    WaitAnalysis,
    gpu_by_process,
    threads_by_time,
    timeline_by_process,
)

SHORT = 15 * SECOND


def table_from(rows, start=0, stop=1000):
    return CpuUsagePreciseTable(rows, start, stop)


def row(process, cpu, ready, start, stop, tid=1):
    return (process, 1, tid, "t", cpu, ready, start, stop)


class TestTimelineByProcess:
    def test_shares_sum_to_busy_fraction(self):
        table = table_from([row("a", 0, 0, 0, 500),
                            row("b", 1, 0, 0, 1000)])
        shares = timeline_by_process(table, n_logical=2)
        assert shares["a"] == (500, pytest.approx(0.25))
        assert shares["b"] == (1000, pytest.approx(0.5))

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            timeline_by_process(table_from([], stop=0), 2)


class TestSampledProfile:
    def test_sampling_recovers_shares(self):
        table = table_from([row("a", 0, 0, 0, 1000),
                            row("b", 1, 0, 0, 500)], stop=1000)
        profile = SampledProfile.from_table(table, n_logical=2,
                                            interval_us=10)
        assert profile.share("a") == pytest.approx(0.5, abs=0.02)
        assert profile.share("b") == pytest.approx(0.25, abs=0.02)

    def test_unknown_process_share_is_zero(self):
        table = table_from([row("a", 0, 0, 0, 1000)])
        profile = SampledProfile.from_table(table, 2, interval_us=100)
        assert profile.share("ghost") == 0.0

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            SampledProfile.from_table(table_from([]), 2, interval_us=0)

    def test_sampled_agrees_with_precise_on_real_run(self):
        run = run_app_once(create_app("handbrake"), duration_us=SHORT,
                           seed=2, keep_trace=True)
        machine = paper_machine()
        profile = SampledProfile.from_table(run.cpu_table,
                                            machine.logical_cpus,
                                            interval_us=1000)
        sampled = profile.share("HandBrake.exe")
        precise = timeline_by_process(
            run.cpu_table, machine.logical_cpus)["HandBrake.exe"][1]
        assert sampled == pytest.approx(precise, abs=0.03)


class TestWaitAnalysis:
    def test_wait_statistics(self):
        table = table_from([row("a", 0, 0, 10, 20),
                            row("a", 0, 30, 50, 60)])
        analysis = WaitAnalysis.from_table(table)
        summary = analysis.summary("a")
        assert summary.mean == pytest.approx(15.0)
        assert summary.maximum == 20

    def test_process_filter(self):
        table = table_from([row("a", 0, 0, 5, 10),
                            row("b", 1, 0, 90, 95)])
        analysis = WaitAnalysis.from_table(table, processes={"a"})
        assert set(analysis.per_process) == {"a"}

    def test_worst_process(self):
        table = table_from([row("fast", 0, 0, 1, 10),
                            row("slow", 1, 0, 80, 90)])
        assert WaitAnalysis.from_table(table).worst_process() == "slow"

    def test_worst_requires_data(self):
        with pytest.raises(ValueError):
            WaitAnalysis.from_table(table_from([])).worst_process()

    def test_contention_raises_scheduler_latency(self):
        def mean_wait(cores):
            machine = paper_machine().with_logical_cpus(cores)
            run = run_app_once(create_app("project-cars-2"),
                               machine=machine, duration_us=SHORT,
                               seed=2, keep_trace=True)
            analysis = WaitAnalysis.from_table(
                run.cpu_table, processes=run.process_names)
            waits = [s.mean for s in analysis.per_process.values()]
            return sum(waits) / len(waits)

        assert mean_wait(4) > mean_wait(12)


class TestGpuByProcess:
    def test_per_process_rollup(self):
        rows = [
            ("a.exe", 1, "3D", "frame", 0, 0, 300),
            ("a.exe", 1, "compute", "kernel", 0, 100, 300),
            ("b.exe", 2, "3D", "frame", 0, 500, 600),
        ]
        table = GpuUtilizationTable(rows, 0, 1000)
        rollup = gpu_by_process(table)
        assert rollup["a.exe"] == (500, pytest.approx(50.0))
        assert rollup["b.exe"] == (100, pytest.approx(10.0))

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            gpu_by_process(GpuUtilizationTable([], 5, 5))

    def test_matches_metric_on_real_run(self):
        run = run_app_once(create_app("winx"), duration_us=SHORT,
                           seed=2, keep_trace=True)
        rollup = gpu_by_process(run.gpu_table)
        app_share = rollup["WinXVideoConverter.exe"][1]
        assert app_share == pytest.approx(
            run.gpu_util.utilization_pct, abs=0.1)


class TestThreadsByTime:
    def test_ranked_descending(self):
        table = table_from([row("a", 0, 0, 0, 100, tid=1),
                            row("a", 1, 0, 0, 400, tid=2),
                            row("b", 2, 0, 0, 250, tid=3)])
        ranked = threads_by_time(table)
        assert [r[3] for r in ranked] == [400, 250, 100]

    def test_process_filter_and_top(self):
        table = table_from([row("a", 0, 0, 0, 100, tid=1),
                            row("a", 1, 0, 0, 400, tid=2),
                            row("b", 2, 0, 0, 250, tid=3)])
        ranked = threads_by_time(table, process="a", top=1)
        assert len(ranked) == 1
        assert ranked[0][0] == "a" and ranked[0][3] == 400

    def test_identifies_encode_workers_in_real_run(self):
        run = run_app_once(create_app("handbrake"), duration_us=SHORT,
                           seed=2, keep_trace=True)
        top = threads_by_time(run.cpu_table, process="HandBrake.exe",
                              top=5)
        assert all(name.startswith("encode") for _p, name, _t, _b in top)
