"""Columnar trace buffers: equivalence with the record-list path."""

import pytest

from repro.sim import Environment
from repro.trace import (
    ContextSwitchRecord,
    CpuUsagePreciseTable,
    CswitchColumns,
    EtlTrace,
    GpuPacketColumns,
    GpuUtilizationTable,
    NameTable,
    TraceSession,
)


def _emit_sample_events(session):
    session.emit_cswitch("app.exe", 4, 7, "worker", 0, 10, 20, 50)
    session.emit_cswitch("app.exe", 4, 8, "render", 1, 15, 25, 60)
    session.emit_cswitch("other.exe", 9, 11, "main", 0, 55, 60, 90)
    session.emit_gpu_packet("app.exe", 4, "3D", "dma", 5, 30, 70)
    session.emit_frame("app.exe", 4, 40, 60, reprojected=True)
    session.emit_mark("app.exe", 4, "phase:load")


def _run_session(columnar):
    env = Environment()
    session = TraceSession(env, columnar=columnar)
    session.start()
    env.timeout(100)
    _emit_sample_events(session)
    env.run()
    return session.stop()


class TestNameTable:
    def test_interning_is_stable(self):
        table = NameTable()
        a = table.intern("app.exe")
        b = table.intern("other.exe")
        assert table.intern("app.exe") == a
        assert table.intern("other.exe") == b
        assert table.names == ["app.exe", "other.exe"]
        assert len(table) == 2


class TestColumnarEquivalence:
    def test_materialized_records_match_legacy(self):
        columnar = _run_session(columnar=True)
        legacy = _run_session(columnar=False)
        assert columnar.cswitches == legacy.cswitches
        assert columnar.gpu_packets == legacy.gpu_packets
        assert columnar.frames == legacy.frames
        assert columnar.marks == legacy.marks
        assert columnar.processes == legacy.processes

    def test_rows_match_materialized_records(self):
        store = CswitchColumns()
        store.append("app.exe", 4, 7, "worker", 0, 10, 20, 50)
        store.append("other.exe", 9, 11, "main", 1, 12, 14, 40)
        rows = store.rows()
        records = store.records()
        fields = ("process", "pid", "tid", "thread_name", "cpu",
                  "ready_time", "switch_in_time", "switch_out_time")
        assert [tuple(getattr(r, f) for f in fields)
                for r in records] == rows
        assert all(isinstance(r, ContextSwitchRecord) for r in records)

    def test_materialization_revalidates(self):
        store = CswitchColumns()
        # Appends skip validation (emitters are consistent by
        # construction)...
        store.append("app.exe", 4, 7, "worker", 0, 99, 20, 50)
        # ...materialization re-runs the dataclass checks.
        with pytest.raises(ValueError):
            store.records()

    def test_wpa_tables_identical_across_backends(self):
        columnar = _run_session(columnar=True)
        legacy = _run_session(columnar=False)
        for table_cls in (CpuUsagePreciseTable, GpuUtilizationTable):
            assert (table_cls.from_trace(columnar).rows
                    == table_cls.from_trace(legacy).rows)

    def test_processes_without_materialization(self):
        trace = _run_session(columnar=True)
        assert trace.processes == ["app.exe", "other.exe"]
        # The name query must not have materialized the record lists.
        assert trace._materialized == {}

    def test_save_load_round_trip(self, tmp_path):
        trace = _run_session(columnar=True)
        path = tmp_path / "trace.etl.jsonl"
        trace.save(path)
        loaded = EtlTrace.load(path)
        assert loaded.cswitches == trace.cswitches
        assert loaded.gpu_packets == trace.gpu_packets
        assert loaded.frames == trace.frames
        assert loaded.marks == trace.marks

    def test_nbytes_grows_with_appends(self):
        store = GpuPacketColumns()
        for k in range(1000):
            store.append("app.exe", 4, "3D", "dma", k, k + 1, k + 2)
        assert store.nbytes() > 0
        assert len(store) == 1000


class TestSessionBufferDetachment:
    def test_restart_does_not_clobber_returned_trace(self):
        """The satellite bugfix: start() must not clear buffers shared
        with a previously returned lazy trace."""
        env = Environment()
        session = TraceSession(env)
        session.start()
        _emit_sample_events(session)
        first = session.stop()

        session.start()
        session.emit_cswitch("late.exe", 1, 2, "t", 0, 0, 0, 5)
        second = session.stop()

        # `first` was materialized *after* the second window recorded.
        assert len(first.cswitches) == 3
        assert {r.process for r in first.cswitches} == {"app.exe",
                                                        "other.exe"}
        assert len(second.cswitches) == 1
        assert second.cswitches[0].process == "late.exe"

    def test_zero_length_window_yields_empty_trace(self):
        env = Environment()
        session = TraceSession(env)
        session.start()
        trace = session.stop()
        assert trace.duration == 0
        assert trace.cswitches == []
        # Downstream metrics refuse the degenerate window explicitly
        # instead of dividing by zero.
        from repro.metrics import measure_tlp

        table = CpuUsagePreciseTable.from_trace(trace)
        with pytest.raises(ValueError):
            measure_tlp(table, 4)

    def test_streaming_session_retains_nothing(self):
        env = Environment()
        session = TraceSession(env, retain_records=False)
        session.start()
        _emit_sample_events(session)
        trace = session.stop()
        assert trace.cswitches == []
        assert trace.gpu_packets == []
        assert trace.frames == []
        assert trace.marks == []
