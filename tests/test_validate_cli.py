"""The ``repro validate`` CLI verb and the cache-reuse validation path."""

import json

import pytest

from repro.cli import main
from repro.harness.cache import ResultCache
from repro.harness.executor import SerialExecutor, make_spec
from repro.validate import (
    GOLDEN_CONFIGS,
    config_id,
    default_golden_path,
    load_goldens,
)
from repro.validate.golden import GOLDEN_DURATION_US, GOLDEN_SEED


def run_cli(argv):
    lines = []
    status = main(argv, out=lines.append)
    return status, "\n".join(lines)


class TestValidateVerb:
    def test_clean_run_against_committed_goldens(self):
        status, output = run_cli(["validate", "--apps", "word"])
        assert status == 0
        assert "checks ok" in output
        assert f"1 apps x {len(GOLDEN_CONFIGS)} configs" in output

    def test_streaming_cross_check(self):
        status, output = run_cli(
            ["validate", "--apps", "word", "--streaming"])
        assert status == 0
        assert "streaming cross-checked" in output

    def test_unknown_app_is_an_error(self):
        status, output = run_cli(["validate", "--apps", "not-an-app"])
        assert status == 2
        assert "unknown applications" in output

    def test_corrupted_golden_fails_with_named_field(self, tmp_path):
        goldens_path = tmp_path / "golden.json"
        with open(default_golden_path(), "r", encoding="utf-8") as fh:
            document = json.load(fh)
        entry = document["apps"]["word"][config_id(4, True)]
        entry["tlp"] = "0x1.5p+1"  # not what the pipeline produces
        entry["digest"] = "0" * 64
        with open(goldens_path, "w", encoding="utf-8") as fh:
            json.dump(document, fh)
        status, output = run_cli(
            ["validate", "--apps", "word", "--golden", str(goldens_path)])
        assert status == 1
        assert "FAIL word" in output
        assert "tlp:" in output  # the diverging field is named

    def test_missing_golden_file_degrades_to_invariants(self, tmp_path):
        status, output = run_cli(
            ["validate", "--apps", "word",
             "--golden", str(tmp_path / "absent.json")])
        assert status == 0
        assert "no golden file found" in output

    def test_update_golden_roundtrip(self, tmp_path):
        goldens_path = tmp_path / "golden.json"
        status, output = run_cli(
            ["validate", "--apps", "word", "--update-golden",
             "--golden", str(goldens_path)])
        assert status == 0
        assert "recorded" in output
        recorded = load_goldens(goldens_path)
        committed = load_goldens()
        assert recorded["word"] == committed["word"]
        # A subsequent check against the fresh file is clean.
        status, _ = run_cli(
            ["validate", "--apps", "word", "--golden", str(goldens_path)])
        assert status == 0

    def test_golden_format_mismatch_is_loud(self, tmp_path):
        bad = tmp_path / "golden.json"
        bad.write_text(json.dumps({"_meta": {"format": 999}, "apps": {}}))
        with pytest.raises(ValueError, match="format"):
            load_goldens(bad)


class TestRunValidateFlag:
    def test_run_with_validate_flag(self):
        status, output = run_cli(
            ["run", "word", "--duration", "1", "--iterations", "1",
             "--validate"])
        assert status == 0
        assert "TLP" in output

    def test_run_with_validate_streaming(self):
        status, _ = run_cli(
            ["run", "word", "--duration", "1", "--iterations", "1",
             "--validate", "--streaming"])
        assert status == 0


class TestCacheReuseValidation:
    def spec(self):
        return make_spec("word", duration_us=GOLDEN_DURATION_US,
                         seed=GOLDEN_SEED)

    def test_good_entries_are_reused(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        warm = SerialExecutor(cache=cache)
        warm.map([self.spec()])
        assert warm.executed == 1
        reuse = SerialExecutor(cache=cache)
        (run,) = reuse.map([self.spec()])
        assert reuse.executed == 0
        assert reuse.rejected == 0
        assert run.tlp.window_us == GOLDEN_DURATION_US

    def test_implausible_entries_are_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        warm = SerialExecutor(cache=cache)
        (run,) = warm.map([self.spec()])
        # Corrupt the cached entry in place: break Eq.-1's c_i sum.
        key = cache.key_for(self.spec())
        run.tlp.fractions = [0.5] * len(run.tlp.fractions)
        cache.store(key, run)
        reuse = SerialExecutor(cache=cache)
        (fresh,) = reuse.map([self.spec()])
        assert reuse.rejected == 1
        assert reuse.executed == 1  # recomputed, not trusted
        assert abs(sum(fresh.tlp.fractions) - 1.0) < 1e-9
        # The bad entry was invalidated and replaced by the fresh run.
        again = SerialExecutor(cache=cache)
        again.map([self.spec()])
        assert again.rejected == 0
        assert again.executed == 0

    def test_validate_knob_does_not_split_the_cache_key(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        plain = cache.key_for(self.spec())
        validated = cache.key_for(
            make_spec("word", duration_us=GOLDEN_DURATION_US,
                      seed=GOLDEN_SEED, validate=True))
        assert plain == validated
