"""Unit tests for the trace-invariant catalogue.

Each invariant is exercised on hand-built traces, on both buffer
backings (record lists and columnar stores) — columnar appends skip
dataclass validation, which is exactly the hole the validator plugs.
"""

import pytest

from repro.sim import Environment
from repro.trace import TraceSession
from repro.trace.columns import CswitchColumns, GpuPacketColumns
from repro.trace.etl import EtlTrace
from repro.trace.records import ContextSwitchRecord, GpuPacketRecord
from repro.validate import (
    INVARIANT_NAMES,
    OnlineValidator,
    TraceValidationError,
    TraceValidator,
    check_single_run,
    validate_trace,
)


def columnar_trace(cswitches=(), gpu=(), start=0, stop=1000):
    """A trace on columnar buffers — rows appended without validation."""
    cs = CswitchColumns()
    for row in cswitches:
        cs.append(*row)
    gp = GpuPacketColumns()
    for row in gpu:
        gp.append(*row)
    return EtlTrace(start, stop, cswitches=cs, gpu_packets=gp)


def record_trace(cswitches=(), gpu=(), start=0, stop=1000):
    """The same trace shape on plain record lists."""
    return EtlTrace(
        start, stop,
        cswitches=[ContextSwitchRecord(*row) for row in cswitches],
        gpu_packets=[GpuPacketRecord(*row) for row in gpu])


CLEAN_CSWITCHES = [
    ("app.exe", 10, 100, "main", 0, 0, 10, 50),
    ("app.exe", 10, 101, "worker", 1, 5, 20, 60),
    ("app.exe", 10, 100, "main", 0, 50, 60, 90),
    ("other.exe", 20, 200, "main", 2, 0, 30, 70),
]
CLEAN_GPU = [
    ("app.exe", 10, "3D", "render", 0, 10, 40),
    ("app.exe", 10, "3D", "render", 30, 40, 80),
    ("app.exe", 10, "Copy", "dma", 0, 5, 25),
]


@pytest.mark.parametrize("factory", [columnar_trace, record_trace])
def test_clean_trace_passes(factory):
    report = validate_trace(factory(CLEAN_CSWITCHES, CLEAN_GPU), n_logical=4)
    assert report.ok
    assert report.invariants_violated == []
    assert tuple(report.checked) == INVARIANT_NAMES


def test_empty_trace_passes():
    assert validate_trace(columnar_trace(), n_logical=4).ok


def test_thread_monotonic_violation():
    # Thread 100 runs on CPUs 0 and 1 at overlapping times.
    trace = columnar_trace([
        ("app.exe", 10, 100, "main", 0, 0, 10, 50),
        ("app.exe", 10, 100, "main", 1, 0, 30, 70),
    ])
    report = validate_trace(trace, n_logical=4)
    assert "thread-monotonic" in report.invariants_violated


def test_balanced_edges_row_disorder():
    # switch_out before switch_in — impossible for a real slice.
    trace = columnar_trace([("app.exe", 10, 100, "main", 0, 0, 40, 20)])
    report = validate_trace(trace, n_logical=4)
    assert "balanced-switch-edges" in report.invariants_violated
    # A negative-duration slice also breaks busy-time conservation
    # against the fused-sweep histogram.
    assert "busy-conservation" in report.invariants_violated


def test_cpu_occupancy_double_booking():
    trace = columnar_trace([
        ("app.exe", 10, 100, "main", 0, 0, 10, 50),
        ("app.exe", 10, 101, "worker", 0, 0, 30, 70),
    ])
    report = validate_trace(trace, n_logical=4)
    assert "cpu-occupancy" in report.invariants_violated


def test_cpu_occupancy_index_out_of_range():
    trace = columnar_trace([("app.exe", 10, 100, "main", 9, 0, 10, 50)])
    report = validate_trace(trace, n_logical=4)
    assert "cpu-occupancy" in report.invariants_violated
    # Without a machine bound, per-CPU exclusivity still holds and the
    # index check is skipped.
    assert validate_trace(trace).ok


def test_gpu_engine_exclusive_violation():
    trace = columnar_trace(gpu=[
        ("app.exe", 10, "3D", "render", 0, 10, 40),
        ("app.exe", 10, "3D", "render", 0, 30, 60),
    ])
    report = validate_trace(trace, n_logical=4)
    assert "gpu-engine-exclusive" in report.invariants_violated


def test_gpu_different_engines_may_overlap():
    trace = columnar_trace(gpu=[
        ("app.exe", 10, "3D", "render", 0, 10, 40),
        ("app.exe", 10, "Copy", "dma", 0, 30, 60),
    ])
    assert validate_trace(trace, n_logical=4).ok


def test_window_containment_violation():
    trace = columnar_trace(
        [("app.exe", 10, 100, "main", 0, 0, 10, 50)], stop=30)
    report = validate_trace(trace, n_logical=4)
    assert "window-containment" in report.invariants_violated


def test_ready_time_before_window_is_legal():
    # A thread may become ready before the recording window opens.
    trace = columnar_trace(
        [("app.exe", 10, 100, "main", 0, 0, 10, 50)], start=5)
    assert validate_trace(trace, n_logical=4).ok


def test_invariant_subset_selection():
    trace = columnar_trace([("app.exe", 10, 100, "main", 9, 0, 10, 50)])
    report = TraceValidator(
        n_logical=4, invariants=("window-containment",)).validate(trace)
    assert report.ok  # the out-of-range CPU check was not selected
    with pytest.raises(ValueError):
        TraceValidator(invariants=("no-such-invariant",))


def test_max_report_caps_violations():
    rows = [("app.exe", 10, 100, "main", 0, 0, 40, 20)] * 100
    report = TraceValidator(n_logical=4, max_report=3).validate(
        columnar_trace(rows))
    per_invariant = {}
    for violation in report.violations:
        per_invariant[violation.invariant] = \
            per_invariant.get(violation.invariant, 0) + 1
    assert max(per_invariant.values()) <= 3


def test_raise_if_failed():
    trace = columnar_trace([("app.exe", 10, 100, "main", 0, 0, 40, 20)])
    report = validate_trace(trace, n_logical=4)
    with pytest.raises(TraceValidationError) as excinfo:
        report.raise_if_failed()
    assert "balanced-switch-edges" in str(excinfo.value)
    assert excinfo.value.report is report


class TestOnlineValidator:
    def make(self, n_logical=4):
        env = Environment()
        session = TraceSession(env)
        validator = OnlineValidator(session, n_logical=n_logical)
        return env, session, validator

    def test_clean_stream(self):
        env, session, validator = self.make()
        session.start()
        session.emit_cpu_busy("app.exe", 0)
        env._now = 100  # advance the simulated clock directly
        session.emit_cpu_busy("app.exe", 1)
        env._now = 200
        session.emit_cpu_idle("app.exe", 0)
        env._now = 300
        session.emit_cpu_idle("app.exe", 1)
        session.stop()
        assert validator.report().ok

    def test_double_busy_flagged(self):
        env, session, validator = self.make()
        session.start()
        session.emit_cpu_busy("app.exe", 0)
        session.emit_cpu_busy("app.exe", 0)
        report = validator.report()
        assert "cpu-occupancy" in report.invariants_violated

    def test_idle_without_busy_flagged(self):
        env, session, validator = self.make()
        session.start()
        session.emit_cpu_idle("app.exe", 0)
        assert ("balanced-switch-edges"
                in validator.report().invariants_violated)

    def test_occupancy_above_machine_flagged(self):
        env, session, validator = self.make(n_logical=1)
        session.start()
        session.emit_cpu_busy("app.exe", 0)
        session.emit_engine_busy("app.exe", "3D")  # engines don't count
        env._now = 10
        session.emit_cpu_busy("app.exe", 1)  # second CPU on a 1-CPU box
        report = validator.report()
        assert "cpu-occupancy" in report.invariants_violated

    def test_conservation_across_window(self):
        env, session, validator = self.make()
        session.emit_cpu_busy("app.exe", 0)  # opens before the window
        env._now = 50
        session.start()
        env._now = 150
        session.emit_cpu_idle("app.exe", 0)
        env._now = 200
        session.stop()
        assert validator.report().ok
        assert validator._windows_sealed == 1


def test_check_single_run_accepts_real_run():
    from repro.harness import run_app_once
    from repro.sim import SECOND

    run = run_app_once("word", duration_us=SECOND, seed=1)
    assert check_single_run(run, n_logical=12) == []


def test_check_single_run_rejects_corruption():
    from repro.harness import run_app_once
    from repro.sim import SECOND

    run = run_app_once("word", duration_us=SECOND, seed=1)
    run.tlp.fractions = [0.5] * len(run.tlp.fractions)
    assert any("sum" in p for p in check_single_run(run))
    run.tlp.window_us = 0
    assert any("window" in p for p in check_single_run(run))
    assert check_single_run(object()) != []
