"""Property-based tests of the validation subsystem.

Two properties pin the subsystem from both sides:

1. *Soundness*: any trace that is valid by construction passes the
   full invariant catalogue — the validator never cries wolf.
2. *Completeness over the fault taxonomy*: every registered fault
   class, injected with an arbitrary seed, is detected, and the report
   names the designated invariant — zero silent mutations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.columns import CswitchColumns, GpuPacketColumns
from repro.trace.etl import EtlTrace
from repro.validate import (
    FAULTS,
    FaultPreconditionError,
    TraceValidator,
    inject_fault,
    validate_trace,
)

N_LOGICAL = 4


# --------------------------------------------------------------------
# Valid-by-construction trace generator.
#
# Each thread is pinned to one CPU and each CPU executes its slices
# back to back with non-negative gaps, so per-CPU exclusivity and
# per-thread monotonicity hold structurally; the window closes after
# the last record, so containment holds too.
# --------------------------------------------------------------------

slice_shape = st.tuples(
    st.integers(min_value=0, max_value=50),    # gap before the slice
    st.integers(min_value=0, max_value=100),   # slice length (0 legal)
    st.integers(min_value=0, max_value=30),    # ready lead time
)

cpu_schedule = st.lists(slice_shape, min_size=0, max_size=8)

packet_shape = st.tuples(
    st.integers(min_value=0, max_value=50),    # gap before the packet
    st.integers(min_value=0, max_value=80),    # execution length
    st.integers(min_value=0, max_value=40),    # submit lead time
)

engine_schedule = st.lists(packet_shape, min_size=0, max_size=6)

valid_trace_parts = st.tuples(
    st.lists(cpu_schedule, min_size=1, max_size=N_LOGICAL),
    st.lists(engine_schedule, min_size=0, max_size=2),
    st.integers(min_value=1, max_value=100),   # window tail
)


def build_valid_trace(parts):
    cpu_schedules, engine_schedules, tail = parts
    cswitches = CswitchColumns()
    last = 0
    for cpu, schedule in enumerate(cpu_schedules):
        clock = 0
        for thread_index, (gap, length, lead) in enumerate(schedule):
            switch_in = clock + gap
            switch_out = switch_in + length
            cswitches.append(
                "app.exe", 10, 1000 * (cpu + 1) + thread_index,
                f"t{cpu}.{thread_index}", cpu,
                max(0, switch_in - lead), switch_in, switch_out)
            clock = switch_out
            last = max(last, switch_out)
    gpu = GpuPacketColumns()
    engines = ("3D", "Copy")
    for engine_index, schedule in enumerate(engine_schedules):
        clock = 0
        for gap, length, lead in schedule:
            start = clock + gap
            finish = start + length
            gpu.append("app.exe", 10, engines[engine_index], "packet",
                       max(0, start - lead), start, finish)
            clock = finish
            last = max(last, finish)
    return EtlTrace(0, last + tail, cswitches=cswitches, gpu_packets=gpu)


@given(valid_trace_parts)
@settings(max_examples=150, deadline=None)
def test_valid_traces_always_pass(parts):
    report = validate_trace(build_valid_trace(parts), n_logical=N_LOGICAL)
    assert report.ok, str(report)


# --------------------------------------------------------------------
# Fault detection.
#
# The base trace is rich enough to satisfy every injector's
# preconditions: multiple positive-length slices per CPU and per
# thread, disjoint slices of different threads, a positive-span GPU
# packet, and records spread across the window.
# --------------------------------------------------------------------

def rich_base_trace():
    cswitches = CswitchColumns()
    rows = [
        ("app.exe", 10, 100, "main", 0, 0, 10, 50),
        ("app.exe", 10, 101, "worker", 1, 5, 20, 60),
        ("app.exe", 10, 100, "main", 0, 50, 70, 120),
        ("app.exe", 10, 102, "io", 1, 60, 80, 130),
        ("app.exe", 10, 101, "worker", 0, 120, 140, 200),
        ("other.exe", 20, 200, "main", 2, 0, 30, 90),
        ("other.exe", 20, 200, "main", 2, 90, 110, 170),
    ]
    for row in rows:
        cswitches.append(*row)
    gpu = GpuPacketColumns()
    for row in [
        ("app.exe", 10, "3D", "render", 0, 15, 55),
        ("app.exe", 10, "3D", "render", 40, 60, 100),
        ("app.exe", 10, "Copy", "dma", 10, 25, 65),
    ]:
        gpu.append(*row)
    return EtlTrace(0, 250, cswitches=cswitches, gpu_packets=gpu)


def test_rich_base_trace_is_clean():
    assert validate_trace(rich_base_trace(), n_logical=N_LOGICAL).ok


@given(fault_name=st.sampled_from(sorted(FAULTS)),
       seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=200, deadline=None)
def test_every_fault_is_detected_and_named(fault_name, seed):
    spec = FAULTS[fault_name]
    corrupted = inject_fault(rich_base_trace(), fault_name, seed=seed)
    report = TraceValidator(n_logical=N_LOGICAL).validate(corrupted)
    assert not report.ok, f"{fault_name} seed={seed} went undetected"
    assert spec.violates in report.invariants_violated, (
        f"{fault_name} seed={seed}: expected {spec.violates!r}, "
        f"got {report.invariants_violated}")


@given(parts=valid_trace_parts,
       fault_name=st.sampled_from(sorted(FAULTS)),
       seed=st.integers(min_value=0, max_value=1_000))
@settings(max_examples=150, deadline=None)
def test_faults_on_generated_traces_never_slip_through(
        parts, fault_name, seed):
    """Where a generated trace is rich enough to inject into, the
    fault must still be detected; otherwise the injector must refuse
    loudly rather than return the trace unchanged."""
    trace = build_valid_trace(parts)
    try:
        corrupted = inject_fault(trace, fault_name, seed=seed)
    except FaultPreconditionError:
        return
    report = TraceValidator(n_logical=N_LOGICAL).validate(corrupted)
    assert spec_violated(fault_name, report), (
        f"{fault_name} seed={seed} silent on generated trace")


def spec_violated(fault_name, report):
    return FAULTS[fault_name].violates in report.invariants_violated


def test_injection_is_deterministic():
    for fault_name in FAULTS:
        first = inject_fault(rich_base_trace(), fault_name, seed=7)
        second = inject_fault(rich_base_trace(), fault_name, seed=7)
        assert list(first.cswitch_rows()) == list(second.cswitch_rows())
        assert list(first.gpu_rows()) == list(second.gpu_rows())
        assert (first.start_time, first.stop_time) == \
               (second.start_time, second.stop_time)


def test_injection_does_not_mutate_the_input():
    base = rich_base_trace()
    before = (list(base.cswitch_rows()), list(base.gpu_rows()),
              base.start_time, base.stop_time)
    for fault_name in FAULTS:
        inject_fault(base, fault_name, seed=3)
    after = (list(base.cswitch_rows()), list(base.gpu_rows()),
             base.start_time, base.stop_time)
    assert before == after


def test_precondition_errors_are_loud():
    empty = EtlTrace(0, 100, cswitches=CswitchColumns(),
                     gpu_packets=GpuPacketColumns())
    for fault_name in FAULTS:
        try:
            inject_fault(empty, fault_name, seed=0)
        except FaultPreconditionError:
            continue
        raise AssertionError(
            f"{fault_name} silently accepted an empty trace")
