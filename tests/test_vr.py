"""Tests for the VR substrate: headsets, compositor, frame policies."""

import pytest

from repro.apps.vr_gaming import Fallout4VR, ProjectCars2, SpacePirateTrainer
from repro.harness import run_app_once
from repro.hardware import paper_machine
from repro.metrics import frame_rate_series
from repro.sim import SECOND
from repro.vr import ASW, HEADSETS, REPROJECTION, RIFT, VIVE, VIVE_PRO

DURATION = 20 * SECOND


def run_vr(cls, headset, machine=None, duration=DURATION, seed=4):
    return run_app_once(cls(headset=headset), machine=machine,
                        duration_us=duration, seed=seed)


class TestHeadsetSpecs:
    def test_three_headsets_registered(self):
        assert set(HEADSETS) == {"rift", "vive", "vive-pro"}

    def test_policies(self):
        assert RIFT.policy == ASW
        assert VIVE.policy == REPROJECTION
        assert VIVE_PRO.policy == REPROJECTION

    def test_vive_pro_has_higher_resolution_load(self):
        assert VIVE_PRO.gpu_load_factor > VIVE.gpu_load_factor == 1.0

    def test_all_target_90_fps(self):
        assert all(h.target_fps == 90 for h in HEADSETS.values())


class TestCompositorBehaviour:
    def test_full_machine_sustains_90_fps(self):
        result = run_vr(SpacePirateTrainer, "vive")
        fps = result.outputs["real_frames"] / (DURATION / SECOND)
        assert fps == pytest.approx(90, abs=3)

    def test_string_and_spec_headset_arguments_agree(self):
        by_key = run_vr(SpacePirateTrainer, "rift")
        by_spec = run_vr(SpacePirateTrainer, RIFT)
        assert by_key.tlp.tlp == by_spec.tlp.tlp

    def test_unknown_headset_key_rejected(self):
        with pytest.raises(KeyError):
            SpacePirateTrainer(headset="psvr")

    def test_rift_tlp_highest(self):
        # Fig. 12a: Rift's heavier client runtime lifts TLP.
        rift = run_vr(SpacePirateTrainer, "rift")
        vive = run_vr(SpacePirateTrainer, "vive")
        assert rift.tlp.tlp > vive.tlp.tlp

    def test_vive_pro_gpu_util_highest_for_gpu_bound_title(self):
        # Fig. 12b: the higher-resolution headset works the GPU harder.
        vive = run_vr(ProjectCars2, "vive")
        pro = run_vr(ProjectCars2, "vive-pro")
        assert pro.gpu_util.utilization_pct > \
            vive.gpu_util.utilization_pct + 5

    def test_fallout4_inverts_on_vive_pro(self):
        # The paper's exception: Fallout 4 is CPU-bound at Vive Pro
        # resolution — GPU utilization drops and frame rate falls.
        vive = run_vr(Fallout4VR, "vive")
        pro = run_vr(Fallout4VR, "vive-pro")
        assert pro.gpu_util.utilization_pct < \
            vive.gpu_util.utilization_pct - 5
        assert pro.outputs["real_frames"] < vive.outputs["real_frames"] * 0.9

    def test_asw_clamps_to_45_when_cpu_starved(self):
        # Fig. 7 / §V-F: with only 4 logical cores the Rift engages
        # ASW and the frame rate clamps near 45 FPS.
        machine = paper_machine().with_logical_cpus(4)
        result = run_vr(ProjectCars2, "rift", machine=machine,
                        duration=30 * SECOND)
        fps = result.outputs["real_frames"] / 30
        assert result.outputs.get("asw_engaged", 0) >= 1
        assert 38 <= fps <= 60

    def test_reprojection_oscillates_when_cpu_starved(self):
        # Vive at 4 logical cores: real frame rate lands between 45
        # and 90 with reprojected frames interleaved.
        machine = paper_machine().with_logical_cpus(4)
        result = run_vr(ProjectCars2, "vive", machine=machine,
                        duration=30 * SECOND)
        fps = result.outputs["real_frames"] / 30
        assert 45 <= fps <= 85
        assert result.outputs["reprojected_frames"] > 90

    def test_rift_frame_rate_more_stable_than_vive_pro(self):
        # Fig. 13: per-second frame-rate variance comparison.
        def variance(headset):
            result = run_vr(ProjectCars2, headset, duration=30 * SECOND)
            series = frame_rate_series(
                [f for f in result.frames if not f.reprojected],
                0, 30 * SECOND)
            values = series.values[1:-1]
            mean = sum(values) / len(values)
            return sum((v - mean) ** 2 for v in values) / len(values)

        assert variance("rift") <= variance("vive-pro")

    def test_frames_recorded_in_trace(self):
        result = run_vr(SpacePirateTrainer, "vive")
        assert len(result.frames) > 85 * (DURATION // SECOND)

    def test_compositor_runs_in_own_process(self):
        result = run_vr(SpacePirateTrainer, "vive")
        assert "vrcompositor.exe" in result.process_names
