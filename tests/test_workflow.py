"""End-to-end test of the paper's Fig. 1 measurement workflow.

Start trace -> run testbench -> save .etl -> WPA table extraction ->
wpaexporter CSV -> custom metric scripts.  Every stage runs on real
artifacts and the results must agree across the file round-trips.
"""

import pytest

from repro.apps import create_app
from repro.automation import InputDriver
from repro.apps.base import AppRuntime
from repro.gpu import GpuDevice
from repro.hardware import paper_machine
from repro.metrics import (
    cross_validate,
    measure_gpu_utilization,
    measure_tlp,
)
from repro.os import Kernel
from repro.sim import SECOND, Environment
from repro.trace import (
    CpuUsagePreciseTable,
    EtlTrace,
    GpuUtilizationTable,
    TraceSession,
    export_csv,
    load_cpu_csv,
    load_gpu_csv,
)


@pytest.fixture(scope="module")
def workflow_artifacts(tmp_path_factory):
    """Run the full Fig. 1 pipeline once and share the artifacts."""
    tmp_path = tmp_path_factory.mktemp("workflow")
    machine = paper_machine()
    env = Environment()
    session = TraceSession(env, machine_name=machine.cpu.name)
    kernel = Kernel(env, machine, session=session, seed=9)
    kernel.start_background_services()
    gpu = GpuDevice(env, machine.gpu, session)
    driver = InputDriver(kernel, seed=9)
    runtime = AppRuntime(kernel, gpu, driver, 20 * SECOND, seed=9)

    session.start()                      # UIforETW: start trace
    create_app("winx").build(runtime)    # start testbench
    env.run(until=runtime.end_time)
    trace = session.stop()               # stop testbench, save trace

    etl_path = tmp_path / "capture.etl.jsonl"
    trace.save(etl_path)

    cpu_csv = tmp_path / "cpu_usage_precise.csv"
    gpu_csv = tmp_path / "gpu_utilization_fm.csv"
    loaded_trace = EtlTrace.load(etl_path)
    export_csv(CpuUsagePreciseTable.from_trace(loaded_trace), cpu_csv)
    export_csv(GpuUtilizationTable.from_trace(loaded_trace), gpu_csv)
    return {
        "machine": machine,
        "trace": trace,
        "gpu": gpu,
        "runtime": runtime,
        "etl_path": etl_path,
        "cpu_csv": cpu_csv,
        "gpu_csv": gpu_csv,
    }


class TestWorkflow:
    def test_trace_contains_app_and_system_processes(self, workflow_artifacts):
        processes = workflow_artifacts["trace"].processes
        assert "WinXVideoConverter.exe" in processes
        assert "System" in processes

    def test_etl_round_trip_preserves_counts(self, workflow_artifacts):
        trace = workflow_artifacts["trace"]
        loaded = EtlTrace.load(workflow_artifacts["etl_path"])
        assert len(loaded.cswitches) == len(trace.cswitches)
        assert len(loaded.gpu_packets) == len(trace.gpu_packets)

    def test_tlp_identical_through_csv_round_trip(self, workflow_artifacts):
        machine = workflow_artifacts["machine"]
        apps = workflow_artifacts["runtime"].process_names
        direct = measure_tlp(
            CpuUsagePreciseTable.from_trace(workflow_artifacts["trace"]),
            machine.logical_cpus, processes=apps)
        via_csv = measure_tlp(
            load_cpu_csv(workflow_artifacts["cpu_csv"]),
            machine.logical_cpus, processes=apps)
        assert via_csv.tlp == pytest.approx(direct.tlp, abs=1e-9)
        assert via_csv.fractions == pytest.approx(direct.fractions)

    def test_gpu_util_identical_through_csv_round_trip(self,
                                                       workflow_artifacts):
        apps = workflow_artifacts["runtime"].process_names
        direct = measure_gpu_utilization(
            GpuUtilizationTable.from_trace(workflow_artifacts["trace"]),
            processes=apps)
        via_csv = measure_gpu_utilization(
            load_gpu_csv(workflow_artifacts["gpu_csv"]), processes=apps)
        assert via_csv.utilization_pct == pytest.approx(
            direct.utilization_pct, abs=1e-9)

    def test_gpu_cross_validation_against_device(self, workflow_artifacts):
        # Paper §III-C: "We cross-validate the GPU data with those
        # reported by WPA."
        table = GpuUtilizationTable.from_trace(workflow_artifacts["trace"])
        delta = cross_validate(table, workflow_artifacts["gpu"])
        assert delta < 1.0

    def test_application_filter_excludes_system_activity(self,
                                                         workflow_artifacts):
        machine = workflow_artifacts["machine"]
        table = CpuUsagePreciseTable.from_trace(workflow_artifacts["trace"])
        apps = workflow_artifacts["runtime"].process_names
        app_level = measure_tlp(table, machine.logical_cpus, processes=apps)
        system_wide = measure_tlp(table, machine.logical_cpus)
        # System-wide includes background services: more busy time.
        assert system_wide.idle_fraction <= app_level.idle_fraction

    def test_measured_values_resemble_table2(self, workflow_artifacts):
        machine = workflow_artifacts["machine"]
        apps = workflow_artifacts["runtime"].process_names
        tlp = measure_tlp(
            CpuUsagePreciseTable.from_trace(workflow_artifacts["trace"]),
            machine.logical_cpus, processes=apps)
        util = measure_gpu_utilization(
            GpuUtilizationTable.from_trace(workflow_artifacts["trace"]),
            processes=apps)
        assert tlp.tlp == pytest.approx(9.2, abs=1.2)
        assert util.utilization_pct == pytest.approx(13.6, abs=3.0)
